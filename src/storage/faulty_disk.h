// FaultyDisk: a deterministic fault-injection layer over any BlockDevice.
//
// The faults it models are the ones an acoustic attack (and any power
// event) produces at the block layer:
//
//  * power cut at the K-th write — the write is lost, the device goes
//    dead, every later command fails (littlefs-style exhaustive
//    exploration enumerates K over the whole workload);
//  * torn write — the cut write persists only a sector-aligned prefix,
//    as a platter loses power mid-track;
//  * write-cache reorder — writes sit volatile in a bounded cache until
//    a flush; a cut persists only a seeded subset of the cached writes,
//    so anything the protocol did not put behind a barrier can vanish;
//  * transient EIO bursts — periodic windows of failed commands
//    mimicking the attack cadence, without killing the device.
//
// Every randomized choice (torn prefix length, which cached writes
// survive) derives from FaultPlan::seed, so a schedule replays exactly
// from its (seed, index) pair. See fault_harness.h for the exploration
// driver that enumerates schedules.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "sim/rng.h"
#include "storage/block_device.h"

namespace deepnote::storage {

/// Everything a single fault schedule needs; value type, cheap to copy.
struct FaultPlan {
  /// Seed for all randomized choices in this plan (torn prefix length,
  /// cache-survivor subset). Derive with sim::trial_seed(base, index).
  std::uint64_t seed = 0;

  /// Power-cut at the Nth write attempt (0-based) seen by the device.
  /// The cut write fails; the device is dead afterwards until revive().
  std::optional<std::uint64_t> cut_at_write;

  /// Power-cut at the Nth erase attempt (0-based). An interrupted erase
  /// leaves the block in a seeded in-between state — either the old
  /// contents survive (erase never bit) or a seeded garbage prefix is
  /// burned over a now-cleared block — and the device goes dead.
  std::optional<std::uint64_t> cut_at_erase;

  /// When cut: persist a seeded sector-aligned prefix of the cut write
  /// (0 <= prefix < sector_count) instead of dropping it whole.
  bool tear_cut_write = false;

  /// >0: emulate a volatile write cache of this many entries. Writes are
  /// held back (visible to reads, invisible to the backing device) until
  /// a flush drains them in order; overflow drains the oldest entry. A
  /// power cut persists a seeded subset of the cached writes, in order.
  std::uint32_t cache_window = 0;

  /// Transient EIO bursts over matching operations (eio_ops mask,
  /// counted per matching op): ops [eio_start, eio_start + eio_len)
  /// fail, then every eio_period ops the burst repeats (period 0 = one
  /// burst only). Transient failures do not kill the device.
  std::uint64_t eio_start = 0;
  std::uint64_t eio_len = 0;
  std::uint64_t eio_period = 0;
  unsigned eio_ops = fault_ops::kAll;

  bool any_fault() const {
    return cut_at_write.has_value() || cut_at_erase.has_value() ||
           eio_len > 0 || cache_window > 0;
  }
};

class FaultyDisk final : public BlockDevice {
 public:
  /// Does not take ownership of `inner`. The plan is armed immediately.
  FaultyDisk(BlockDevice& inner, FaultPlan plan = {});

  std::uint64_t total_sectors() const override {
    return inner_.total_sectors();
  }

  BlockIo read(sim::SimTime now, std::uint64_t lba,
               std::uint32_t sector_count, std::span<std::byte> out) override;
  BlockIo write(sim::SimTime now, std::uint64_t lba,
                std::uint32_t sector_count,
                std::span<const std::byte> in) override;
  BlockIo flush(sim::SimTime now) override;
  BlockIo erase(sim::SimTime now, std::uint64_t lba,
                std::uint32_t sector_count) override;

  /// True once the power cut fired; every command fails until revive().
  bool dead() const { return dead_; }
  /// "Reboot": clear the dead state and the fault plan. Cached writes
  /// that were not persisted by the cut are gone — only the backing
  /// device's contents survive, exactly like a real power cycle.
  void revive();

  /// Write attempts seen so far (including failed ones) — the exhaustive
  /// explorer sizes its schedule space from a benign run's count.
  std::uint64_t writes_seen() const { return writes_seen_; }
  /// Erase attempts seen so far — sizes the interrupted-erase schedule
  /// space the same way writes_seen() sizes the write-cut space.
  std::uint64_t erases_seen() const { return erases_seen_; }
  std::uint64_t ops_seen() const { return ops_seen_; }
  /// The first command the plan failed, for shrink reports.
  const std::optional<FailedOp>& first_failure() const {
    return first_failure_;
  }

 private:
  struct CachedWrite {
    std::uint64_t lba;
    std::vector<std::byte> data;
  };

  bool eio_hit(DiskOpKind kind);
  void record_failure(DiskOpKind kind, std::uint64_t lba,
                      std::uint32_t sector_count);
  /// The power event: persist the seeded cache subset (and torn prefix
  /// of `in`, if tearing), then go dead.
  void cut(sim::SimTime now, std::uint64_t lba, std::uint32_t sector_count,
           std::span<const std::byte> in);
  BlockIo drain_cache(sim::SimTime now);

  BlockDevice& inner_;
  FaultPlan plan_;
  sim::Rng rng_;
  bool dead_ = false;
  std::uint64_t writes_seen_ = 0;
  std::uint64_t erases_seen_ = 0;
  std::uint64_t ops_seen_ = 0;
  std::uint64_t eio_matched_ = 0;
  std::deque<CachedWrite> cache_;
  std::optional<FailedOp> first_failure_;
};

}  // namespace deepnote::storage
