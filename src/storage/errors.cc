#include "storage/errors.h"

namespace deepnote::storage {

const char* errno_name(Errno e) {
  switch (e) {
    case Errno::kOk: return "OK";
    case Errno::kENOENT: return "ENOENT";
    case Errno::kEIO: return "EIO";
    case Errno::kEBADF: return "EBADF";
    case Errno::kEAGAIN: return "EAGAIN";
    case Errno::kEEXIST: return "EEXIST";
    case Errno::kENOTDIR: return "ENOTDIR";
    case Errno::kEISDIR: return "EISDIR";
    case Errno::kEINVAL: return "EINVAL";
    case Errno::kENOSPC: return "ENOSPC";
    case Errno::kEROFS: return "EROFS";
    case Errno::kENAMETOOLONG: return "ENAMETOOLONG";
    case Errno::kENOTEMPTY: return "ENOTEMPTY";
  }
  return "E?";
}

}  // namespace deepnote::storage
