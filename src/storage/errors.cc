#include "storage/errors.h"

#include "storage/block_device.h"

namespace deepnote::storage {

const char* disk_op_name(DiskOpKind kind) {
  switch (kind) {
    case DiskOpKind::kRead: return "read";
    case DiskOpKind::kWrite: return "write";
    case DiskOpKind::kFlush: return "flush";
    case DiskOpKind::kErase: return "erase";
  }
  return "op?";
}

const char* errno_name(Errno e) {
  switch (e) {
    case Errno::kOk: return "OK";
    case Errno::kENOENT: return "ENOENT";
    case Errno::kEIO: return "EIO";
    case Errno::kEBADF: return "EBADF";
    case Errno::kEAGAIN: return "EAGAIN";
    case Errno::kEEXIST: return "EEXIST";
    case Errno::kENOTDIR: return "ENOTDIR";
    case Errno::kEISDIR: return "EISDIR";
    case Errno::kEINVAL: return "EINVAL";
    case Errno::kENOSPC: return "ENOSPC";
    case Errno::kEROFS: return "EROFS";
    case Errno::kENAMETOOLONG: return "ENAMETOOLONG";
    case Errno::kENOTEMPTY: return "ENOTEMPTY";
  }
  return "E?";
}

}  // namespace deepnote::storage
