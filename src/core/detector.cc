#include "core/detector.h"

#include <cstdio>

namespace deepnote::core {

AttackDetector::AttackDetector(DetectorConfig config) : config_(config) {}

void AttackDetector::raise(sim::SimTime when, std::string reason) {
  if (alerted_) return;
  alerted_ = true;
  alert_time_ = when;
  alert_reason_ = std::move(reason);
}

void AttackDetector::record_ok(sim::SimTime completed, double latency_s) {
  ++ops_;
  consecutive_errors_ = 0;
  if (baseline_ == 0.0) {
    baseline_ = latency_s;
    recent_ = latency_s;
    return;
  }
  recent_ = (1.0 - config_.recent_alpha) * recent_ +
            config_.recent_alpha * latency_s;
  const bool warmed = ops_ >= config_.warmup_ops;
  if (warmed && recent_ > baseline_ * config_.latency_factor) {
    char msg[160];
    std::snprintf(msg, sizeof(msg),
                  "latency anomaly: recent %.2f ms vs baseline %.3f ms "
                  "(x%.0f) — acoustic interference suspected",
                  recent_ * 1e3, baseline_ * 1e3, recent_ / baseline_);
    raise(completed, msg);
    return;
  }
  // The baseline only learns from sane samples so an ongoing attack
  // cannot poison it.
  if (latency_s < baseline_ * config_.latency_factor) {
    baseline_ = (1.0 - config_.baseline_alpha) * baseline_ +
                config_.baseline_alpha * latency_s;
  }
}

void AttackDetector::record_error(sim::SimTime completed) {
  ++ops_;
  if (++consecutive_errors_ >= config_.error_burst) {
    char msg[160];
    std::snprintf(msg, sizeof(msg),
                  "%u consecutive I/O failures — storage unresponsive, "
                  "acoustic interference suspected",
                  consecutive_errors_);
    raise(completed, msg);
  }
}

void AttackDetector::acknowledge() {
  alerted_ = false;
  alert_reason_.clear();
  consecutive_errors_ = 0;
}

}  // namespace deepnote::core
