#include "core/sweep.h"

#include <algorithm>
#include <cmath>

#include "core/testbed.h"

namespace deepnote::core {

SweepPoint FrequencySweep::measure(double frequency_hz,
                                   const SweepConfig& config) const {
  SweepPoint point;
  point.frequency_hz = frequency_hz;

  AttackConfig attack = config.attack;
  attack.frequency_hz = frequency_hz;
  attack.start = sim::SimTime::zero();
  attack.end = sim::SimTime::infinity();

  auto run_job = [&](workload::IoPattern pattern,
                     std::uint64_t seed) -> workload::FioReport {
    ScenarioSpec spec = make_scenario(scenario_, seed);
    spec.hdd.retain_data = false;  // raw-device job: timing only
    Testbed bed(spec);
    bed.apply_attack(sim::SimTime::zero(), attack);
    workload::FioJobConfig job;
    job.pattern = pattern;
    job.submit_overhead = spec.fio_submit_overhead;
    job.ramp = config.ramp;
    job.duration = config.duration;
    job.seed = seed;
    workload::FioRunner runner(bed.device());
    return runner.run(sim::SimTime::zero(), job);
  };

  point.write = run_job(workload::IoPattern::kSeqWrite, config.seed);
  point.read = run_job(workload::IoPattern::kSeqRead, config.seed + 1);

  ScenarioSpec spec = make_scenario(scenario_, config.seed);
  Testbed bed(spec);
  point.offtrack_nm = bed.predicted_offtrack_nm(attack);
  return point;
}

std::vector<SweepPoint> FrequencySweep::run(const SweepConfig& config) const {
  std::vector<SweepPoint> points;
  points.reserve(config.frequencies_hz.size());
  for (double f : config.frequencies_hz) {
    points.push_back(measure(f, config));
  }
  return points;
}

bool FrequencySweep::vulnerable(const SweepPoint& point,
                                double baseline_mbps) {
  return point.write.throughput_mbps < 0.5 * baseline_mbps;
}

FrequencySweep::ReconResult FrequencySweep::recon(
    const AttackConfig& attack, double coarse_lo_hz, double coarse_hi_hz,
    double refine_step_hz, const SweepConfig* base) const {
  ReconResult out;
  SweepConfig config;
  if (base) config = *base;
  config.attack = attack;

  // Baseline (no attack): a silent "attack" far away.
  SweepConfig baseline_cfg = config;
  AttackConfig silent = attack;
  silent.spl_air_db = -100.0;
  baseline_cfg.attack = silent;
  const SweepPoint baseline = measure(coarse_lo_hz, baseline_cfg);
  const double baseline_mbps = baseline.write.throughput_mbps;

  // Coarse pass: quarter-octave steps.
  config.frequencies_hz = acoustics::SteppedSweepSignal::geometric_plan(
      coarse_lo_hz, coarse_hi_hz, std::pow(2.0, 0.25));
  out.coarse = run(config);

  double lo = 0.0, hi = 0.0;
  for (const auto& p : out.coarse) {
    if (vulnerable(p, baseline_mbps)) {
      if (lo == 0.0) lo = p.frequency_hz;
      hi = p.frequency_hz;
    }
  }
  if (lo == 0.0) return out;

  // Refine with 50 Hz steps one coarse step beyond the detected edges.
  const double refine_lo = std::max(coarse_lo_hz, lo / std::pow(2.0, 0.25));
  const double refine_hi = std::min(coarse_hi_hz, hi * std::pow(2.0, 0.25));
  config.frequencies_hz = acoustics::SteppedSweepSignal::linear_plan(
      refine_lo, refine_hi, refine_step_hz);
  out.refined = run(config);

  out.band_lo_hz = 0.0;
  out.band_hi_hz = 0.0;
  for (const auto& p : out.refined) {
    if (vulnerable(p, baseline_mbps)) {
      if (out.band_lo_hz == 0.0) out.band_lo_hz = p.frequency_hz;
      out.band_hi_hz = p.frequency_hz;
    }
  }
  return out;
}

}  // namespace deepnote::core
