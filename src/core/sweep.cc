#include "core/sweep.h"

#include <algorithm>
#include <cmath>

#include "core/testbed.h"
#include "sim/trial_runner.h"

namespace deepnote::core {

SweepPoint FrequencySweep::measure_point(double frequency_hz,
                                         const SweepConfig& config,
                                         bool attack_on) const {
  SweepPoint point;
  point.frequency_hz = attack_on ? frequency_hz : 0.0;

  AttackConfig attack = config.attack;
  attack.frequency_hz = frequency_hz;
  attack.start = sim::SimTime::zero();
  attack.end = sim::SimTime::infinity();

  // One testbed per job; the write-side testbed also provides the
  // off-track prediction (it is pure in the attack parameters, so no
  // separate analysis testbed is needed).
  auto run_job = [&](workload::IoPattern pattern, std::uint64_t seed,
                     double* offtrack_nm) -> workload::FioReport {
    ScenarioSpec spec = make_scenario(scenario_, seed);
    spec.hdd.retain_data = false;  // raw-device job: timing only
    Testbed bed(spec);
    if (attack_on) {
      if (offtrack_nm) *offtrack_nm = bed.predicted_offtrack_nm(attack);
      bed.apply_attack(sim::SimTime::zero(), attack);
    }
    workload::FioJobConfig job;
    job.pattern = pattern;
    job.submit_overhead = spec.fio_submit_overhead;
    job.ramp = config.ramp;
    job.duration = config.duration;
    job.seed = seed;
    workload::FioRunner runner(bed.device());
    return runner.run(sim::SimTime::zero(), job);
  };

  point.write = run_job(workload::IoPattern::kSeqWrite, config.seed,
                        &point.offtrack_nm);
  point.read =
      run_job(workload::IoPattern::kSeqRead, config.seed + 1, nullptr);
  return point;
}

SweepPoint FrequencySweep::measure(double frequency_hz,
                                   const SweepConfig& config) const {
  return measure_point(frequency_hz, config, /*attack_on=*/true);
}

SweepPoint FrequencySweep::baseline(const SweepConfig& config) const {
  return measure_point(config.attack.frequency_hz, config,
                       /*attack_on=*/false);
}

std::vector<SweepPoint> FrequencySweep::run(
    const SweepConfig& config) const {
  return sim::run_trials<SweepPoint>(
      config.frequencies_hz.size(), config.jobs, [&](std::size_t i) {
        SweepConfig point_config = config;
        point_config.seed = sim::trial_seed(config.seed, i);
        return measure(config.frequencies_hz[i], point_config);
      });
}

bool FrequencySweep::vulnerable(const SweepPoint& point,
                                double baseline_mbps) {
  return point.write.throughput_mbps < 0.5 * baseline_mbps;
}

FrequencySweep::ReconResult FrequencySweep::recon(
    const AttackConfig& attack, double coarse_lo_hz, double coarse_hi_hz,
    double refine_step_hz, const SweepConfig* base) const {
  ReconResult out;
  SweepConfig config;
  if (base) config = *base;
  config.attack = attack;

  // True no-attack baseline (speaker off, not a "silent attack").
  out.baseline_mbps = baseline(config).write.throughput_mbps;

  // Coarse pass: quarter-octave steps.
  config.frequencies_hz = acoustics::SteppedSweepSignal::geometric_plan(
      coarse_lo_hz, coarse_hi_hz, std::pow(2.0, 0.25));
  out.coarse = run(config);

  std::optional<double> lo, hi;
  for (const auto& p : out.coarse) {
    if (vulnerable(p, out.baseline_mbps)) {
      if (!lo) lo = p.frequency_hz;
      hi = p.frequency_hz;
    }
  }
  if (!lo) return out;

  // Refine with 50 Hz steps one coarse step beyond the detected edges.
  const double refine_lo = std::max(coarse_lo_hz, *lo / std::pow(2.0, 0.25));
  const double refine_hi = std::min(coarse_hi_hz, *hi * std::pow(2.0, 0.25));
  config.frequencies_hz = acoustics::SteppedSweepSignal::linear_plan(
      refine_lo, refine_hi, refine_step_hz);
  out.refined = run(config);

  for (const auto& p : out.refined) {
    if (vulnerable(p, out.baseline_mbps)) {
      if (!out.band_lo_hz) out.band_lo_hz = p.frequency_hz;
      out.band_hi_hz = p.frequency_hz;
    }
  }
  return out;
}

}  // namespace deepnote::core
