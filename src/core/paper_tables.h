// Shared builders for the paper's headline results (Figure 2, Tables
// 1-3). The bench mains (bench/fig2_frequency_sweep.cpp,
// bench/table{1,2,3}_*.cpp) and the golden-table regression suite
// (tests/core/golden_tables_test.cc) run the SAME code paths through
// these functions, so a tolerance-free CSV diff of the golden outputs
// covers the whole experiment pipeline: physics, HDD model, storage
// stack, workloads, and table formatting.
//
// `scale` in (0, 1] shrinks the measurement windows (and, for Figure 2,
// coarsens the frequency grid) so the regression suite can afford the
// full pipeline; scale 1.0 is exactly the paper-scale bench run. Every
// config keeps its fixed default seed — outputs are bit-identical for a
// given (scale, seed) at any thread count.
#pragma once

#include <utility>
#include <vector>

#include "core/crash_experiment.h"
#include "core/range_test.h"
#include "core/report.h"
#include "core/sweep.h"
#include "workload/db_bench.h"

namespace deepnote::core {

/// Figure 2 grid: 140 dB SPL at 1 cm, 100 Hz..8 kHz (denser below
/// 2 kHz, mirroring the paper's 50 Hz narrowing of Section 4.1).
SweepConfig figure2_config(double scale = 1.0);

using Figure2Series =
    std::vector<std::pair<std::string, std::vector<SweepPoint>>>;

/// Run the sweep for all three scenarios (plastic floor / plastic
/// tower / metal tower). Feed into format_figure2().
Figure2Series run_figure2(const SweepConfig& config);

/// Table 1: FIO vs distance at 650 Hz, 140 dB SPL, Scenario 2.
RangeTestConfig table1_config(double scale = 1.0);
sim::Table build_table1(const RangeTestConfig& config);

/// Table 2: readwhilewriting on the LSM store vs distance. The bench
/// config is CALIBRATED so the no-attack row reports the paper's
/// 8.7 MB/s and ~1.1e5 ops/s at scale 1.
RangeTestConfig table2_config(double scale = 1.0);
workload::DbBenchConfig table2_bench_config(double scale = 1.0);
storage::kvdb::DbConfig table2_db_config();
sim::Table build_table2(const RangeTestConfig& config,
                        const workload::DbBenchConfig& bench,
                        const storage::kvdb::DbConfig& db);

/// Table 3: time-to-crash of Ext4 / Ubuntu server / RocksDB under the
/// best-attack parameters. `scale` shortens only the give-up limit (the
/// crash times themselves are physics, not configuration).
CrashExperimentConfig table3_config(double scale = 1.0);
sim::Table build_table3(const CrashExperimentConfig& config);

}  // namespace deepnote::core
