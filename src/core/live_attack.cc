#include "core/live_attack.h"

namespace deepnote::core {

LiveAttackDriver::LiveAttackDriver(
    Testbed& bed, std::shared_ptr<const acoustics::Signal> signal,
    double distance_m, sim::Duration update_interval, sim::SimTime start,
    bool retire_on_silence)
    : bed_(bed),
      source_(std::move(signal), acoustics::SpeakerSpec::aq339_diluvio(),
              acoustics::AmplifierSpec::toa_bg2120()),
      distance_m_(distance_m),
      interval_(update_interval),
      next_(start),
      retire_on_silence_(retire_on_silence) {}

void LiveAttackDriver::step() {
  const sim::SimTime now = next_;
  const acoustics::ToneState emitted = source_.emitted(now);
  current_ = emitted;
  const acoustics::ToneState incident =
      bed_.path().received(emitted, distance_m_);
  bed_.drive().set_excitation(now, bed_.chain().excite(incident));
  // Once a previously-active signal goes quiet, the driver retires after
  // clearing the excitation (a not-yet-started signal keeps polling).
  if (emitted.active) {
    was_active_ = true;
  } else if (was_active_ && retire_on_silence_) {
    next_ = sim::SimTime::infinity();
    return;
  }
  next_ = now + interval_;
}

}  // namespace deepnote::core
