// Software crash experiments (paper Section 4.4, Table 3).
//
// Three victims run on the attacked testbed with the best-attack
// parameters (650 Hz, 140 dB SPL, 1 cm):
//   * Ext4: a file writer on the journaling filesystem; the crash is the
//     journal aborting with error -5 (EIO) -> read-only.
//   * Ubuntu server: the ServerOs model; the crash is system daemons
//     failing every file access after the root fs aborts.
//   * RocksDB: the LSM store under a write workload; the crash is the
//     WAL sync failing when the memtable switches.
//
// Each experiment reports the time from attack start to the crash.
#pragma once

#include <optional>
#include <string>

#include "core/attack.h"
#include "core/scenario.h"

namespace deepnote::core {

struct CrashResult {
  bool crashed = false;
  double time_to_crash_s = 0.0;  ///< from attack start
  std::string error_output;      ///< the application's failure signature
};

struct CrashExperimentConfig {
  AttackConfig attack;  ///< defaults: 650 Hz, 140 dB, 1 cm
  /// Give up if nothing crashed after this long under attack.
  sim::Duration limit = sim::Duration::from_seconds(300.0);
  std::uint64_t seed = 0xc4a5;
  /// Worker threads for run_all(); 0 = $DEEPNOTE_JOBS or all cores.
  unsigned jobs = 0;
};

/// Results of the whole Table 3 suite.
struct CrashSuite {
  CrashResult ext4;
  CrashResult ubuntu_server;
  CrashResult rocksdb;
};

class CrashExperiments {
 public:
  explicit CrashExperiments(ScenarioId scenario = ScenarioId::kPlasticTower)
      : scenario_(scenario) {}

  CrashResult ext4(const CrashExperimentConfig& config) const;
  CrashResult ubuntu_server(const CrashExperimentConfig& config) const;
  CrashResult rocksdb(const CrashExperimentConfig& config) const;

  /// Table 3 driver: the three victims are independent simulations, so
  /// they fan across a sim::TaskPool (config.jobs). Each victim sees the
  /// exact seed/config a standalone call would, so results are identical
  /// to running the three methods serially.
  CrashSuite run_all(const CrashExperimentConfig& config) const;

 private:
  ScenarioId scenario_;
};

}  // namespace deepnote::core
