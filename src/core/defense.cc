#include "core/defense.h"

#include <algorithm>
#include <cmath>

namespace deepnote::core {

const char* defense_name(DefenseKind kind) {
  switch (kind) {
    case DefenseKind::kNone: return "none";
    case DefenseKind::kAbsorbingLiner: return "absorbing liner";
    case DefenseKind::kVibrationDampener: return "vibration dampener";
    case DefenseKind::kAugmentedController: return "augmented controller";
  }
  return "?";
}

DefenseProperties defense_properties(DefenseKind kind) {
  DefenseProperties p;
  p.name = defense_name(kind);
  switch (kind) {
    case DefenseKind::kNone:
      p.overheating_risk = 0.0;
      break;
    case DefenseKind::kAbsorbingLiner:
      // Foam lining blocks the convective path to the water coolant.
      p.overheating_risk = 0.7;
      break;
    case DefenseKind::kVibrationDampener:
      // Polymer pads conduct poorly but cover little area.
      p.overheating_risk = 0.25;
      break;
    case DefenseKind::kAugmentedController:
      p.overheating_risk = 0.0;  // firmware only
      break;
  }
  return p;
}

ScenarioSpec with_defense(ScenarioSpec spec, DefenseKind kind) {
  switch (kind) {
    case DefenseKind::kNone:
    case DefenseKind::kAbsorbingLiner:
      break;  // liner installs at runtime (install_defense)
    case DefenseKind::kVibrationDampener:
      // Viscoelastic pads: halve modal Q, cut peak gains, add broadband
      // isolation between mount and drive.
      spec.mount.broadband_coupling_db -= 6.0;
      for (auto& m : spec.mount.modes) {
        m.q = std::max(0.5, m.q * 0.5);
        m.peak_gain_db -= 8.0;
      }
      break;
    case DefenseKind::kAugmentedController:
      // Better disturbance rejection: effective tolerance widened and the
      // rejection corner pushed up.
      spec.hdd.servo.write_fault_fraction *= 1.8;
      spec.hdd.servo.read_fault_fraction =
          std::min(0.45, spec.hdd.servo.read_fault_fraction * 1.8);
      spec.hdd.servo.rejection_corner_hz *= 1.5;
      break;
  }
  return spec;
}

void install_defense(Testbed& bed, DefenseKind kind) {
  if (kind != DefenseKind::kAbsorbingLiner) return;
  // Metallic-foam liner: absorption rises with frequency (poor below a
  // few hundred Hz, strong in the kHz range) — Lu et al. [27].
  bed.chain().set_insertion_loss([](double f) {
    const double octaves_above_200 = std::log2(std::max(f, 200.0) / 200.0);
    return std::min(30.0, 4.0 + 5.0 * octaves_above_200);
  });
}

}  // namespace deepnote::core
