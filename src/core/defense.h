// Defense models (paper Section 5, "In-air Defenses").
//
// Three candidate countermeasures adapted to the underwater setting:
//  * Absorbing liner — acoustically absorbing material (metallic foam,
//    Lu et al. [27]) lining the enclosure: frequency-rising insertion
//    loss, but it insulates heat (an overheating-risk proxy is reported).
//  * Vibration dampener — viscoelastic polymer between tower and drive
//    (Sperling [41]): broadband coupling reduction plus extra loss near
//    the mount resonances.
//  * Augmented feedback controller — firmware servo change (Bolton et
//    al. [6]): widens the effective off-track tolerance.
#pragma once

#include <string>

#include "core/scenario.h"
#include "core/testbed.h"

namespace deepnote::core {

enum class DefenseKind {
  kNone,
  kAbsorbingLiner,
  kVibrationDampener,
  kAugmentedController,
};

const char* defense_name(DefenseKind kind);

struct DefenseProperties {
  std::string name;
  /// Relative increase in thermal resistance of the enclosure (the
  /// overheating concern Section 5 raises for insulating defenses).
  double overheating_risk = 0.0;  // 0 = none, 1 = severe
};

DefenseProperties defense_properties(DefenseKind kind);

/// Modify a scenario spec for a defense applied before deployment
/// (the controller changes the drive servo; the dampener changes the
/// mount). Returns the modified spec.
ScenarioSpec with_defense(ScenarioSpec spec, DefenseKind kind);

/// Install runtime defenses on an assembled testbed (the liner's
/// insertion loss). Call after construction; no-op for spec-level
/// defenses.
void install_defense(Testbed& bed, DefenseKind kind);

}  // namespace deepnote::core
