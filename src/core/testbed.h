// The assembled victim testbed: water path -> enclosure -> mount -> HDD,
// with the OS block layer on top.
//
// This mirrors Figure 1 of the paper: an underwater speaker insonifies a
// submerged container holding the victim drive; the host accesses the
// drive through a normal kernel block layer.
#pragma once

#include <memory>
#include <optional>

#include "acoustics/propagation.h"
#include "core/attack.h"
#include "core/scenario.h"
#include "hdd/drive.h"
#include "storage/os_device.h"
#include "structure/chain.h"

namespace deepnote::core {

class Testbed {
 public:
  explicit Testbed(ScenarioSpec spec);

  /// Start (or retune) the attack: computes the excitation reaching the
  /// drive for the given tone/distance and applies it.
  void apply_attack(sim::SimTime now, const AttackConfig& attack);

  /// Silence the speaker.
  void stop_attack(sim::SimTime now);

  /// Analysis helper: the off-track amplitude (nm) the drive head would
  /// see for a hypothetical attack, without touching drive state.
  double predicted_offtrack_nm(const AttackConfig& attack) const;

  /// Analysis helper: SPL at the enclosure wall for an attack.
  double exterior_spl_db(const AttackConfig& attack) const;

  hdd::Hdd& drive() { return *drive_; }
  storage::OsBlockDevice& device() { return *device_; }
  structure::StructuralChain& chain() { return chain_; }
  const acoustics::PropagationPath& path() const { return path_; }
  const ScenarioSpec& spec() const { return spec_; }
  const std::optional<AttackConfig>& active_attack() const {
    return active_attack_;
  }

 private:
  structure::DriveExcitation excitation_for(const AttackConfig& attack) const;

  ScenarioSpec spec_;
  acoustics::PropagationPath path_;
  structure::StructuralChain chain_;
  std::unique_ptr<hdd::Hdd> drive_;
  std::unique_ptr<storage::OsBlockDevice> device_;
  std::optional<AttackConfig> active_attack_;
};

}  // namespace deepnote::core
