// The assembled victim testbed: water path -> enclosure -> mount -> HDD,
// with the OS block layer on top.
//
// This mirrors Figure 1 of the paper: an underwater speaker insonifies a
// submerged container holding the victim drive; the host accesses the
// drive through a normal kernel block layer.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "acoustics/propagation.h"
#include "core/attack.h"
#include "core/scenario.h"
#include "hdd/drive.h"
#include "storage/os_device.h"
#include "structure/chain.h"

namespace deepnote::core {

class Testbed {
 public:
  explicit Testbed(ScenarioSpec spec);

  /// Start (or retune) the attack: computes the excitation reaching the
  /// drive for the given tone/distance and applies it.
  void apply_attack(sim::SimTime now, const AttackConfig& attack);

  /// Silence the speaker.
  void stop_attack(sim::SimTime now);

  /// Analysis helper: the off-track amplitude (nm) the drive head would
  /// see for a hypothetical attack, without touching drive state.
  ///
  /// The full source -> water -> enclosure -> mount -> servo evaluation
  /// is pure in (frequency, SPL, distance) for a fixed scenario, so
  /// results are memoized per testbed; sweeps and detectors revisiting a
  /// tone pay the chain cost once. The cache self-invalidates when the
  /// chain's transfer function changes (e.g. a defense installing an
  /// insertion loss).
  double predicted_offtrack_nm(const AttackConfig& attack) const;

  /// Drop the memoized attack-chain evaluations (the next lookup is a
  /// cold one). Only benchmarks measuring the uncached path need this;
  /// correctness never does.
  void clear_analysis_cache() const;

  /// Analysis helper: SPL at the enclosure wall for an attack.
  double exterior_spl_db(const AttackConfig& attack) const;

  hdd::Hdd& drive() { return *drive_; }
  storage::OsBlockDevice& device() { return *device_; }
  structure::StructuralChain& chain() { return chain_; }
  const acoustics::PropagationPath& path() const { return path_; }
  const ScenarioSpec& spec() const { return spec_; }
  const std::optional<AttackConfig>& active_attack() const {
    return active_attack_;
  }

 private:
  struct OfftrackKey {
    double frequency_hz;
    double spl_air_db;
    double distance_m;
    bool operator==(const OfftrackKey&) const = default;
  };
  static constexpr std::size_t kOfftrackCacheCap = 256;

  structure::DriveExcitation excitation_for(const AttackConfig& attack) const;

  ScenarioSpec spec_;
  acoustics::PropagationPath path_;
  structure::StructuralChain chain_;
  std::unique_ptr<hdd::Hdd> drive_;
  std::unique_ptr<storage::OsBlockDevice> device_;
  std::optional<AttackConfig> active_attack_;
  // Memo for predicted_offtrack_nm, stamped with the chain generation it
  // was filled under. Not thread-safe — like the rest of the testbed.
  mutable std::vector<std::pair<OfftrackKey, double>> offtrack_cache_;
  mutable std::uint64_t offtrack_cache_generation_ = 0;
};

}  // namespace deepnote::core
