#include "core/testbed.h"

namespace deepnote::core {

Testbed::Testbed(ScenarioSpec spec)
    : spec_(std::move(spec)),
      path_(acoustics::Medium(spec_.water), spec_.spreading,
            spec_.absorption),
      chain_(structure::Enclosure(spec_.enclosure),
             structure::Mount(spec_.mount)) {
  drive_ = std::make_unique<hdd::Hdd>(spec_.hdd);
  device_ = std::make_unique<storage::OsBlockDevice>(*drive_,
                                                     spec_.os_device);
}

structure::DriveExcitation Testbed::excitation_for(
    const AttackConfig& attack) const {
  const acoustics::AcousticSource source = attack.make_source();
  // Tone as emitted mid-attack (the source is time-invariant for a fixed
  // AttackConfig; evaluate at its start time).
  const acoustics::ToneState emitted = source.emitted(attack.start);
  const acoustics::ToneState incident =
      path_.received(emitted, attack.distance_m);
  return chain_.excite(incident);
}

void Testbed::apply_attack(sim::SimTime now, const AttackConfig& attack) {
  active_attack_ = attack;
  drive_->set_excitation(now, excitation_for(attack));
}

void Testbed::stop_attack(sim::SimTime now) {
  active_attack_.reset();
  drive_->set_excitation(now, structure::DriveExcitation{});
}

double Testbed::predicted_offtrack_nm(const AttackConfig& attack) const {
  if (offtrack_cache_generation_ != chain_.transfer_generation()) {
    offtrack_cache_.clear();
    offtrack_cache_generation_ = chain_.transfer_generation();
  }
  const OfftrackKey key{attack.frequency_hz, attack.spl_air_db,
                        attack.distance_m};
  for (const auto& [k, nm] : offtrack_cache_) {
    if (k == key) return nm;
  }
  const auto excitation = excitation_for(attack);
  const double nm =
      drive_->servo().evaluate(excitation).offtrack_amplitude_nm;
  if (offtrack_cache_.size() >= kOfftrackCacheCap) offtrack_cache_.clear();
  offtrack_cache_.emplace_back(key, nm);
  return nm;
}

void Testbed::clear_analysis_cache() const {
  offtrack_cache_.clear();
  chain_.clear_transfer_cache();
}

double Testbed::exterior_spl_db(const AttackConfig& attack) const {
  const acoustics::AcousticSource source = attack.make_source();
  const acoustics::ToneState emitted = source.emitted(attack.start);
  return path_.received_spl_db(emitted, attack.distance_m);
}

}  // namespace deepnote::core
