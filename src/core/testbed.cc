#include "core/testbed.h"

namespace deepnote::core {

Testbed::Testbed(ScenarioSpec spec)
    : spec_(std::move(spec)),
      path_(acoustics::Medium(spec_.water), spec_.spreading,
            spec_.absorption),
      chain_(structure::Enclosure(spec_.enclosure),
             structure::Mount(spec_.mount)) {
  drive_ = std::make_unique<hdd::Hdd>(spec_.hdd);
  device_ = std::make_unique<storage::OsBlockDevice>(*drive_,
                                                     spec_.os_device);
}

structure::DriveExcitation Testbed::excitation_for(
    const AttackConfig& attack) const {
  const acoustics::AcousticSource source = attack.make_source();
  // Tone as emitted mid-attack (the source is time-invariant for a fixed
  // AttackConfig; evaluate at its start time).
  const acoustics::ToneState emitted = source.emitted(attack.start);
  const acoustics::ToneState incident =
      path_.received(emitted, attack.distance_m);
  return chain_.excite(incident);
}

void Testbed::apply_attack(sim::SimTime now, const AttackConfig& attack) {
  active_attack_ = attack;
  drive_->set_excitation(now, excitation_for(attack));
}

void Testbed::stop_attack(sim::SimTime now) {
  active_attack_.reset();
  drive_->set_excitation(now, structure::DriveExcitation{});
}

double Testbed::predicted_offtrack_nm(const AttackConfig& attack) const {
  const auto excitation = excitation_for(attack);
  return drive_->servo().evaluate(excitation).offtrack_amplitude_nm;
}

double Testbed::exterior_spl_db(const AttackConfig& attack) const {
  const acoustics::AcousticSource source = attack.make_source();
  const acoustics::ToneState emitted = source.emitted(attack.start);
  return path_.received_spl_db(emitted, attack.distance_m);
}

}  // namespace deepnote::core
