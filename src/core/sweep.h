// Frequency analysis (paper Section 4.1, Figure 2).
//
// Runs the FIO sequential-write and sequential-read jobs against a fresh
// testbed per frequency point, with the attack tone applied for the whole
// job. Also implements the attacker's recon procedure: a coarse sweep
// from 100 Hz to 16.9 kHz followed by 50 Hz narrowing between the
// vulnerable frequencies.
//
// Every point is an independent, deterministically-seeded trial: run()
// fans the grid across a sim::TaskPool (config.jobs; $DEEPNOTE_JOBS or
// all cores by default) and output is bit-identical at any thread count.
#pragma once

#include <optional>
#include <vector>

#include "core/attack.h"
#include "core/scenario.h"
#include "workload/fio.h"

namespace deepnote::core {

struct SweepPoint {
  double frequency_hz = 0.0;
  workload::FioReport write;
  workload::FioReport read;
  double offtrack_nm = 0.0;  ///< model-predicted head off-track amplitude
};

struct SweepConfig {
  std::vector<double> frequencies_hz;
  AttackConfig attack;  ///< frequency_hz is overridden per point
  sim::Duration ramp = sim::Duration::from_seconds(2.0);
  sim::Duration duration = sim::Duration::from_seconds(10.0);
  std::uint64_t seed = 0x5eef;
  /// Worker threads for run()/recon(); 0 = $DEEPNOTE_JOBS or all cores.
  unsigned jobs = 0;
};

class FrequencySweep {
 public:
  explicit FrequencySweep(ScenarioId scenario) : scenario_(scenario) {}

  /// Measure a single frequency point (fresh testbed, fully
  /// deterministic for a given seed).
  SweepPoint measure(double frequency_hz, const SweepConfig& config) const;

  /// Measure a point with no attack applied at all: the true "No Attack"
  /// baseline (frequency_hz and offtrack_nm are 0 in the result).
  SweepPoint baseline(const SweepConfig& config) const;

  std::vector<SweepPoint> run(const SweepConfig& config) const;

  /// Section 4.1 narrowing procedure. Returns the coarse points, the
  /// refined 50 Hz points, and the detected vulnerable band.
  struct ReconResult {
    std::vector<SweepPoint> coarse;
    std::vector<SweepPoint> refined;
    double baseline_mbps = 0.0;  ///< no-attack write throughput
    /// Vulnerable band edges; absent when no frequency qualified.
    std::optional<double> band_lo_hz;
    std::optional<double> band_hi_hz;
  };
  ReconResult recon(const AttackConfig& attack,
                    double coarse_lo_hz = 100.0,
                    double coarse_hi_hz = 16900.0,
                    double refine_step_hz = 50.0,
                    const SweepConfig* base = nullptr) const;

  /// Throughput-loss criterion used to call a frequency "vulnerable".
  static bool vulnerable(const SweepPoint& point, double baseline_mbps);

 private:
  SweepPoint measure_point(double frequency_hz, const SweepConfig& config,
                           bool attack_on) const;

  ScenarioId scenario_;
};

}  // namespace deepnote::core
