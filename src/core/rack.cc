#include "core/rack.h"

#include <stdexcept>

namespace deepnote::core {

RackTestbed::RackTestbed(RackConfig config)
    : config_(config),
      spec_(make_scenario(config.scenario, config.seed)),
      path_(acoustics::Medium(spec_.water), spec_.spreading,
            spec_.absorption) {
  if (config_.bays == 0) {
    throw std::invalid_argument("rack: needs at least one bay");
  }
  if (config_.os_device.has_value()) spec_.os_device = *config_.os_device;
  if (config_.retain_data.has_value()) {
    spec_.hdd.retain_data = *config_.retain_data;
  }
  for (std::size_t bay = 0; bay < config_.bays; ++bay) {
    structure::MountSpec mount = spec_.mount;
    mount.broadband_coupling_db += bay_offset_db(bay);
    chains_.emplace_back(structure::Enclosure(spec_.enclosure),
                         structure::Mount(mount));
    hdd::HddConfig drive_cfg = spec_.hdd;
    drive_cfg.rng_seed = config_.seed + 0x9e3779b9ull * (bay + 1);
    drives_.push_back(std::make_unique<hdd::Hdd>(drive_cfg));
    devices_.push_back(std::make_unique<storage::OsBlockDevice>(
        *drives_.back(), spec_.os_device));
  }
}

double RackTestbed::bay_offset_db(std::size_t bay) const {
  return config_.near_bay_gain_db +
         config_.per_bay_step_db * static_cast<double>(bay);
}

structure::DriveExcitation RackTestbed::excitation_for(
    std::size_t bay, const AttackConfig& attack) const {
  const acoustics::AcousticSource source = attack.make_source();
  const acoustics::ToneState emitted = source.emitted(attack.start);
  const acoustics::ToneState incident =
      path_.received(emitted, attack.distance_m);
  return chains_.at(bay).excite(incident);
}

void RackTestbed::apply_attack(sim::SimTime now, const AttackConfig& attack) {
  for (std::size_t bay = 0; bay < bays(); ++bay) {
    drives_[bay]->set_excitation(now, excitation_for(bay, attack));
  }
}

void RackTestbed::stop_attack(sim::SimTime now) {
  for (auto& drive : drives_) {
    drive->set_excitation(now, structure::DriveExcitation{});
  }
}

double RackTestbed::predicted_offtrack_nm(std::size_t bay,
                                          const AttackConfig& attack) const {
  const auto excitation = excitation_for(bay, attack);
  return drives_.at(bay)->servo().evaluate(excitation).offtrack_amplitude_nm;
}

std::size_t RackTestbed::parked_bays() const {
  std::size_t n = 0;
  for (const auto& drive : drives_) {
    if (drive->parked()) ++n;
  }
  return n;
}

}  // namespace deepnote::core
