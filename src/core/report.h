// Paper-style table formatting for experiment results.
#pragma once

#include <vector>

#include "core/crash_experiment.h"
#include "core/range_test.h"
#include "core/sweep.h"
#include "sim/table.h"

namespace deepnote::core {

/// Table 1: FIO read/write throughput & latency vs distance.
sim::Table format_table1(const std::vector<FioRangeRow>& rows);

/// Table 2: KV store throughput & I/O rate vs distance.
sim::Table format_table2(const std::vector<KvRangeRow>& rows);

/// Table 3: crashes in real-world applications.
struct CrashRow {
  std::string application;
  std::string description;
  CrashResult result;
};
sim::Table format_table3(const std::vector<CrashRow>& rows);

/// Figure 2 series: frequency vs throughput for several scenarios.
sim::Table format_figure2(
    const std::vector<std::pair<std::string, std::vector<SweepPoint>>>&
        series,
    bool write_side);

std::string format_distance(const std::optional<double>& distance_m);

/// Print a table honouring an optional output-format argv flag:
/// `--csv`, `--md`/`--markdown`, or (default) aligned text.
void print_table(const sim::Table& table, int argc, char** argv);

}  // namespace deepnote::core
