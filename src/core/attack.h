// Attacker configuration.
//
// The paper's attacker transmits a sine wave of chosen frequency at
// 140 dB SPL (quoted against the in-air 20 uPa reference, "similar to the
// transmitting acoustic power used in air by previous work") from an
// underwater speaker at a chosen distance from the enclosure.
#pragma once

#include <memory>

#include "acoustics/source.h"
#include "sim/time.h"

namespace deepnote::core {

struct AttackConfig {
  double frequency_hz = 650.0;
  /// Level as quoted in the paper: dB SPL re 20 uPa (air convention).
  double spl_air_db = 140.0;
  /// Speaker-to-enclosure distance, meters (paper sweeps 0.01 .. 0.25).
  double distance_m = 0.01;
  sim::SimTime start = sim::SimTime::zero();
  sim::SimTime end = sim::SimTime::infinity();

  /// The equivalent underwater source level, dB re 1 uPa (+26 dB rule).
  double source_level_water_db() const;

  /// Build the transmit chain (GNU-radio sine -> amp -> AQ339 speaker).
  acoustics::AcousticSource make_source() const;
};

}  // namespace deepnote::core
