#include "core/attack.h"

#include "acoustics/units.h"

namespace deepnote::core {

double AttackConfig::source_level_water_db() const {
  return acoustics::spl_air_db_to_water_db(spl_air_db);
}

acoustics::AcousticSource AttackConfig::make_source() const {
  auto signal = std::make_shared<acoustics::ToneSignal>(
      frequency_hz, source_level_water_db(), start, end);
  return acoustics::AcousticSource(std::move(signal),
                                   acoustics::SpeakerSpec::aq339_diluvio(),
                                   acoustics::AmplifierSpec::toa_bg2120());
}

}  // namespace deepnote::core
