// The paper's three evaluation scenarios, fully parameterized.
//
//   Scenario 1: HDD on the floor of a hard plastic container.
//   Scenario 2: HDD in a 5-bay storage tower inside the plastic container
//               (the paper's "more realistic" choice for Tables 1-3).
//   Scenario 3: HDD in the storage tower inside an aluminum container.
//
// This file is the calibration hub: every constant marked CALIBRATED was
// chosen so the no-attack baselines and the attack-response *shape* match
// the paper (see DESIGN.md section 5 and EXPERIMENTS.md).
#pragma once

#include <string>

#include "acoustics/propagation.h"
#include "hdd/drive.h"
#include "sim/time.h"
#include "storage/os_device.h"
#include "structure/chain.h"

namespace deepnote::core {

enum class ScenarioId {
  kPlasticFloor = 1,   ///< Scenario 1
  kPlasticTower = 2,   ///< Scenario 2
  kMetalTower = 3,     ///< Scenario 3
  /// Extension (not in the paper): a Project-Natick-style steel pressure
  /// vessel with a nitrogen interior — the real deployment the paper's
  /// Section 5 asks about ("the steel walls of a data center ... may
  /// attenuate the signal").
  kSteelVessel = 4,
};

struct ScenarioSpec {
  ScenarioId id = ScenarioId::kPlasticTower;
  std::string name;

  acoustics::WaterConditions water;
  acoustics::SpreadingParams spreading;
  acoustics::AbsorptionModel absorption =
      acoustics::AbsorptionModel::kFreshwater;

  structure::EnclosureSpec enclosure;
  structure::MountSpec mount;

  hdd::HddConfig hdd;
  storage::OsDeviceConfig os_device;

  /// Host-side per-op submission cost used by the FIO jobs (calibrated
  /// together with the drive command overheads to the paper's no-attack
  /// 22.7 / 18.0 MB/s baselines).
  sim::Duration fio_submit_overhead = sim::Duration::from_micros(100);
};

/// Build the calibrated spec for one of the paper's scenarios.
ScenarioSpec make_scenario(ScenarioId id, std::uint64_t seed = 0xd15c);

const char* scenario_name(ScenarioId id);

}  // namespace deepnote::core
