#include "core/crash_experiment.h"

#include <memory>
#include <stdexcept>
#include <vector>

#include "core/testbed.h"
#include "sim/task_pool.h"
#include "storage/extfs.h"
#include "storage/kvdb/db.h"
#include "storage/server_os.h"
#include "workload/actor.h"
#include "workload/db_bench.h"

namespace deepnote::core {
namespace {

/// Standard filesystem daemons used by every crash experiment.
struct FsDaemons {
  workload::LambdaActor commit;
  workload::LambdaActor writeback;

  FsDaemons(storage::ExtFs& fs, sim::SimTime start)
      : commit(start,
               [&fs](sim::SimTime now) -> sim::SimTime {
                 if (fs.read_only()) return sim::SimTime::infinity();
                 if (fs.commit_due(now)) {
                   storage::FsResult r = fs.commit(now);
                   return sim::max(r.done,
                                   now + sim::Duration::from_millis(100));
                 }
                 return now + sim::Duration::from_millis(100);
               }),
        writeback(start, [&fs](sim::SimTime now) -> sim::SimTime {
          if (fs.read_only()) return sim::SimTime::infinity();
          if (fs.dirty_bytes() == 0) {
            return now + sim::Duration::from_millis(100);
          }
          storage::FsResult r = fs.writeback(now, 8ull << 20);
          return sim::max(r.done, now + sim::Duration::from_millis(100));
        }) {}
};

}  // namespace

CrashResult CrashExperiments::ext4(const CrashExperimentConfig& config) const {
  ScenarioSpec spec = make_scenario(scenario_, config.seed);
  Testbed bed(spec);

  sim::SimTime t = sim::SimTime::zero();
  storage::MkfsOptions mkfs;
  mkfs.total_blocks = 2u << 18;
  storage::FsResult fr = storage::ExtFs::mkfs(bed.device(), t, mkfs);
  if (!fr.ok()) throw std::runtime_error("ext4 crash: mkfs failed");
  auto mount = storage::ExtFs::mount(bed.device(), fr.done);
  if (!mount.ok()) throw std::runtime_error("ext4 crash: mount failed");
  storage::ExtFs& fs = *mount.fs;

  std::uint32_t ino = 0;
  fr = fs.create(mount.done, "/data.bin", &ino);
  if (!fr.ok()) throw std::runtime_error("ext4 crash: create failed");

  // Attack begins now.
  const sim::SimTime attack_start = fr.done;
  AttackConfig attack = config.attack;
  attack.start = attack_start;
  bed.apply_attack(attack_start, attack);

  // A 4 KiB appender (the application whose data the journal orders).
  std::vector<std::byte> block(4096, std::byte{0x42});
  std::uint64_t offset = 0;
  workload::LambdaActor writer(
      attack_start, [&](sim::SimTime now) -> sim::SimTime {
        if (fs.read_only()) return sim::SimTime::infinity();
        storage::FsIoResult r = fs.write(now, ino, offset, block);
        if (!r.ok()) {
          // Buffer I/O error surfaced to the app; it keeps trying.
          return r.done + sim::Duration::from_millis(100);
        }
        offset += block.size();
        return r.done + sim::Duration::from_micros(80);
      });
  FsDaemons daemons(fs, attack_start);

  workload::ActorScheduler sched;
  sched.add(writer);
  sched.add(daemons.commit);
  sched.add(daemons.writeback);
  // Run in 100 ms slices until the journal aborts or the limit passes.
  const sim::SimTime limit = attack_start + config.limit;
  sim::SimTime cursor = attack_start;
  while (!fs.read_only() && cursor < limit) {
    cursor = cursor + sim::Duration::from_millis(100);
    sched.run_until(cursor);
  }

  CrashResult result;
  if (fs.read_only()) {
    result.crashed = true;
    result.time_to_crash_s = (fs.abort_time() - attack_start).seconds();
    result.error_output =
        "JBD: journal commit I/O error, aborting journal (error " +
        std::to_string(fs.error_code()) + "); remounting read-only";
  }
  return result;
}

CrashResult CrashExperiments::ubuntu_server(
    const CrashExperimentConfig& config) const {
  ScenarioSpec spec = make_scenario(scenario_, config.seed);
  Testbed bed(spec);

  sim::SimTime t = sim::SimTime::zero();
  storage::MkfsOptions mkfs;
  mkfs.total_blocks = 2u << 18;
  storage::FsResult fr = storage::ExtFs::mkfs(bed.device(), t, mkfs);
  if (!fr.ok()) throw std::runtime_error("ubuntu crash: mkfs failed");
  auto mount = storage::ExtFs::mount(bed.device(), fr.done);
  if (!mount.ok()) throw std::runtime_error("ubuntu crash: mount failed");
  storage::ExtFs& fs = *mount.fs;

  storage::ServerOs os(fs);
  storage::ServerOs::BootResult boot = os.boot(mount.done);
  if (!boot.ok()) throw std::runtime_error("ubuntu crash: boot failed");

  const sim::SimTime attack_start = boot.done;
  AttackConfig attack = config.attack;
  attack.start = attack_start;
  bed.apply_attack(attack_start, attack);

  workload::LambdaActor ticker(
      os.next_tick(), [&](sim::SimTime now) -> sim::SimTime {
        if (os.crashed()) return sim::SimTime::infinity();
        storage::ServerOs::TickResult r = os.tick(now);
        (void)r;
        return os.crashed() ? sim::SimTime::infinity() : os.next_tick();
      });
  FsDaemons daemons(fs, attack_start);

  workload::ActorScheduler sched;
  sched.add(ticker);
  sched.add(daemons.commit);
  sched.add(daemons.writeback);
  const sim::SimTime limit = attack_start + config.limit;
  sim::SimTime cursor = attack_start;
  while (!os.crashed() && cursor < limit) {
    cursor = cursor + sim::Duration::from_millis(100);
    sched.run_until(cursor);
  }

  CrashResult result;
  if (os.crashed()) {
    result.crashed = true;
    result.time_to_crash_s = (os.crash_time() - attack_start).seconds();
    result.error_output = os.crash_reason();
  }
  return result;
}

CrashResult CrashExperiments::rocksdb(
    const CrashExperimentConfig& config) const {
  ScenarioSpec spec = make_scenario(scenario_, config.seed);
  Testbed bed(spec);

  sim::SimTime t = sim::SimTime::zero();
  storage::MkfsOptions mkfs;
  mkfs.total_blocks = 2u << 18;
  storage::FsResult fr = storage::ExtFs::mkfs(bed.device(), t, mkfs);
  if (!fr.ok()) throw std::runtime_error("rocksdb crash: mkfs failed");
  auto mount = storage::ExtFs::mount(bed.device(), fr.done);
  if (!mount.ok()) throw std::runtime_error("rocksdb crash: mount failed");
  storage::ExtFs& fs = *mount.fs;

  storage::kvdb::DbConfig db_cfg;
  // db_bench-like defaults: 64 MiB write buffer; the memtable fills
  // ~6.3 s into the attack, whose WAL sync then wedges on the drive
  // (CALIBRATED with put_cpu to reproduce the paper's 81.3 s).
  db_cfg.write_buffer_bytes = 64ull << 20;
  db_cfg.put_cpu = sim::Duration::from_nanos(11050);
  db_cfg.get_cpu = sim::Duration::from_micros(9);
  auto open = storage::kvdb::Db::open(fs, mount.done, db_cfg);
  if (!open.ok()) throw std::runtime_error("rocksdb crash: open failed");
  storage::kvdb::Db& db = *open.db;

  // Warm-up before the attack: the store was serving traffic already
  // (and its allocator metadata is cached).
  std::uint64_t preload_index = 0;
  sim::SimTime t_pre = open.done;
  for (; preload_index < 40000; ++preload_index) {
    storage::kvdb::DbResult r = db.put(
        t_pre, workload::DbBench::make_key(preload_index, 16),
        workload::DbBench::make_value(preload_index, 64));
    if (!r.ok()) throw std::runtime_error("rocksdb crash: preload failed");
    t_pre = r.done;
  }
  storage::FsResult pre_sync = fs.sync(t_pre);
  if (!pre_sync.ok()) throw std::runtime_error("rocksdb crash: sync failed");

  const sim::SimTime attack_start = pre_sync.done;
  AttackConfig attack = config.attack;
  attack.start = attack_start;
  bed.apply_attack(attack_start, attack);

  std::uint64_t key_index = preload_index;
  workload::LambdaActor writer(
      attack_start, [&](sim::SimTime now) -> sim::SimTime {
        if (db.fatal()) return sim::SimTime::infinity();
        storage::kvdb::DbResult r = db.put(
            now, workload::DbBench::make_key(key_index, 16),
            workload::DbBench::make_value(key_index, 64));
        if (r.err == storage::Errno::kEAGAIN) {
          return r.done + sim::Duration::from_millis(10);
        }
        if (!r.ok()) return sim::SimTime::infinity();
        ++key_index;
        return r.done;
      });
  workload::LambdaActor flusher(
      attack_start, [&](sim::SimTime now) -> sim::SimTime {
        if (db.fatal()) return sim::SimTime::infinity();
        if (db.flush_pending()) {
          storage::kvdb::DbResult r = db.do_flush(now);
          return sim::max(r.done, now + sim::Duration::from_millis(10));
        }
        return now + sim::Duration::from_millis(10);
      });
  FsDaemons daemons(fs, attack_start);

  workload::ActorScheduler sched;
  sched.add(writer);
  sched.add(flusher);
  sched.add(daemons.commit);
  sched.add(daemons.writeback);
  const sim::SimTime limit = attack_start + config.limit;
  sim::SimTime cursor = attack_start;
  while (!db.fatal() && cursor < limit) {
    cursor = cursor + sim::Duration::from_millis(100);
    sched.run_until(cursor);
  }

  CrashResult result;
  if (db.fatal()) {
    result.crashed = true;
    result.time_to_crash_s = (db.fatal_time() - attack_start).seconds();
    result.error_output = db.fatal_message();
  }
  return result;
}

CrashSuite CrashExperiments::run_all(
    const CrashExperimentConfig& config) const {
  CrashSuite suite;
  sim::TaskPool pool(config.jobs);
  pool.run({
      [&] { suite.ext4 = ext4(config); },
      [&] { suite.ubuntu_server = ubuntu_server(config); },
      [&] { suite.rocksdb = rocksdb(config); },
  });
  return suite;
}

}  // namespace deepnote::core
