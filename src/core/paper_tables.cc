#include "core/paper_tables.h"

namespace deepnote::core {
namespace {

sim::Duration scaled(double seconds, double scale) {
  return sim::Duration::from_seconds(seconds * scale);
}

}  // namespace

SweepConfig figure2_config(double scale) {
  SweepConfig config;
  config.attack.spl_air_db = 140.0;
  config.attack.distance_m = 0.01;
  config.ramp = scaled(2.0, scale);
  config.duration = scaled(10.0, scale);
  // The paper plots 100 Hz .. 8 kHz; denser below 2 kHz where the
  // action is. Reduced scales coarsen the grid proportionally.
  const double lo_step = scale >= 1.0 ? 100.0 : 200.0;
  const double hi_step = scale >= 1.0 ? 250.0 : 500.0;
  for (double f = 100.0; f <= 2000.0; f += lo_step) {
    config.frequencies_hz.push_back(f);
  }
  for (double f = 2000.0 + hi_step; f <= 8000.0; f += hi_step) {
    config.frequencies_hz.push_back(f);
  }
  return config;
}

Figure2Series run_figure2(const SweepConfig& config) {
  Figure2Series series;
  for (auto id : {ScenarioId::kPlasticFloor, ScenarioId::kPlasticTower,
                  ScenarioId::kMetalTower}) {
    FrequencySweep sweep(id);
    series.emplace_back(scenario_name(id), sweep.run(config));
  }
  return series;
}

RangeTestConfig table1_config(double scale) {
  RangeTestConfig config;
  config.attack.frequency_hz = 650.0;
  config.attack.spl_air_db = 140.0;
  config.ramp = scaled(5.0, scale);
  config.duration = scaled(30.0, scale);
  return config;
}

sim::Table build_table1(const RangeTestConfig& config) {
  RangeTest range(ScenarioId::kPlasticTower);
  return format_table1(range.run_fio(config));
}

RangeTestConfig table2_config(double scale) {
  RangeTestConfig config;
  config.attack.frequency_hz = 650.0;
  config.attack.spl_air_db = 140.0;
  config.ramp = sim::Duration::from_seconds(5.0);
  config.duration = scaled(30.0, scale);
  return config;
}

workload::DbBenchConfig table2_bench_config(double scale) {
  workload::DbBenchConfig bench;
  bench.key_bytes = 16;
  bench.value_bytes = 64;
  bench.reader_actors = 1;
  // CALIBRATED with the db op costs so the no-attack row reports the
  // paper's 8.7 MB/s and ~1.1e5 ops/s at scale 1.
  bench.writer_think = sim::Duration::from_micros(9);
  bench.ramp = scaled(10.0, scale);
  bench.preload_keys = scale >= 1.0 ? 100000 : 10000;
  return bench;
}

storage::kvdb::DbConfig table2_db_config() {
  storage::kvdb::DbConfig db;
  db.write_buffer_bytes = 48ull << 20;
  db.put_cpu = sim::Duration::from_micros(13);
  db.get_cpu = sim::Duration::from_micros(13);
  return db;
}

sim::Table build_table2(const RangeTestConfig& config,
                        const workload::DbBenchConfig& bench,
                        const storage::kvdb::DbConfig& db) {
  RangeTest range(ScenarioId::kPlasticTower);
  return format_table2(range.run_kvdb(config, bench, db));
}

CrashExperimentConfig table3_config(double scale) {
  CrashExperimentConfig config;
  config.attack.frequency_hz = 650.0;
  config.attack.spl_air_db = 140.0;
  config.attack.distance_m = 0.01;
  config.limit = scaled(300.0, scale);
  return config;
}

sim::Table build_table3(const CrashExperimentConfig& config) {
  CrashExperiments experiments(ScenarioId::kPlasticTower);
  const CrashSuite suite = experiments.run_all(config);
  std::vector<CrashRow> rows;
  rows.push_back({"Ext4", "Journaling filesystem", suite.ext4});
  rows.push_back({"Ubuntu", "Ubuntu server 16.04", suite.ubuntu_server});
  rows.push_back({"RocksDB", "Key-value database", suite.rocksdb});
  return format_table3(rows);
}

}  // namespace deepnote::core
