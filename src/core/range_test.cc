#include "core/range_test.h"

#include <stdexcept>

#include "core/testbed.h"
#include "sim/trial_runner.h"
#include "storage/extfs.h"

namespace deepnote::core {

std::vector<FioRangeRow> RangeTest::run_fio(
    const RangeTestConfig& config) const {
  return sim::run_trials<FioRangeRow>(
      config.distances_m.size(), config.jobs, [&](std::size_t i) {
        const std::optional<double>& distance = config.distances_m[i];
        const std::uint64_t row_seed = sim::trial_seed(config.seed, i);
        FioRangeRow row;
        row.distance_m = distance;

        auto run_job = [&](workload::IoPattern pattern,
                           std::uint64_t seed) -> workload::FioReport {
          ScenarioSpec spec = make_scenario(scenario_, seed);
          spec.hdd.retain_data = false;  // raw-device job: timing only
          Testbed bed(spec);
          if (distance.has_value()) {
            AttackConfig attack = config.attack;
            attack.distance_m = *distance;
            bed.apply_attack(sim::SimTime::zero(), attack);
          }
          workload::FioJobConfig job;
          job.pattern = pattern;
          job.submit_overhead = spec.fio_submit_overhead;
          job.ramp = config.ramp;
          job.duration = config.duration;
          job.seed = seed;
          workload::FioRunner runner(bed.device());
          return runner.run(sim::SimTime::zero(), job);
        };

        row.read = run_job(workload::IoPattern::kSeqRead, row_seed);
        row.write = run_job(workload::IoPattern::kSeqWrite, row_seed + 1);
        return row;
      });
}

std::vector<KvRangeRow> RangeTest::run_kvdb(
    const RangeTestConfig& config, const workload::DbBenchConfig& bench,
    const storage::kvdb::DbConfig& db_config) const {
  return sim::run_trials<KvRangeRow>(
      config.distances_m.size(), config.jobs, [&](std::size_t i) {
        const std::optional<double>& distance = config.distances_m[i];
        KvRangeRow row;
        row.distance_m = distance;

        ScenarioSpec spec =
            make_scenario(scenario_, sim::trial_seed(config.seed, i));
        Testbed bed(spec);

        // Setup phase (no attack): format, mount, open, preload, flush.
        sim::SimTime t = sim::SimTime::zero();
        storage::MkfsOptions mkfs;
        mkfs.total_blocks = 2u << 18;  // 4 GiB filesystem
        storage::FsResult fr = storage::ExtFs::mkfs(bed.device(), t, mkfs);
        if (!fr.ok()) throw std::runtime_error("range kvdb: mkfs failed");
        auto mount = storage::ExtFs::mount(bed.device(), fr.done);
        if (!mount.ok()) throw std::runtime_error("range kvdb: mount failed");
        storage::ExtFs& fs = *mount.fs;
        auto open = storage::kvdb::Db::open(fs, mount.done, db_config);
        if (!open.ok()) throw std::runtime_error("range kvdb: open failed");
        storage::kvdb::Db& db = *open.db;

        workload::DbBench dbb(fs, db);
        t = dbb.fillseq(open.done, bench.preload_keys, bench);
        if (db.fatal()) {
          throw std::runtime_error("range kvdb: preload failed");
        }
        storage::kvdb::DbResult fl = db.flush(t);
        if (!fl.ok()) throw std::runtime_error("range kvdb: preload flush");
        storage::FsResult sync = fs.sync(fl.done);
        t = sync.done;

        // Attack on, then the measured phase.
        if (distance.has_value()) {
          AttackConfig attack = config.attack;
          attack.distance_m = *distance;
          attack.start = t;
          bed.apply_attack(t, attack);
        }
        workload::DbBenchConfig run_cfg = bench;
        run_cfg.duration = config.duration;
        row.report = dbb.readwhilewriting(t, run_cfg);
        return row;
      });
}

}  // namespace deepnote::core
