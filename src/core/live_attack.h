// Time-varying attack driver.
//
// The attacker's signal generator (GNU Radio in the paper) can sweep or
// chirp the tone while a workload runs. This driver samples an
// acoustics::Signal on a fixed cadence and retunes the testbed's
// excitation, so a live frequency sweep plays out against a running
// victim in one simulation.
#pragma once

#include <memory>

#include "acoustics/signal.h"
#include "acoustics/source.h"
#include "core/testbed.h"
#include "workload/actor.h"

namespace deepnote::core {

class LiveAttackDriver final : public workload::Actor {
 public:
  /// Drives `bed` with `signal` played through the standard transmit
  /// chain at `distance_m`, retuning every `update_interval`.
  /// When `retire_on_silence` is true the driver stops polling once a
  /// previously-active signal goes quiet (one-shot tones/sweeps); pass
  /// false for signals with gaps, e.g. PulsedToneSignal.
  LiveAttackDriver(Testbed& bed, std::shared_ptr<const acoustics::Signal> signal,
                   double distance_m,
                   sim::Duration update_interval = sim::Duration::from_millis(50),
                   sim::SimTime start = sim::SimTime::zero(),
                   bool retire_on_silence = true);

  sim::SimTime next_time() const override { return next_; }
  void step() override;

  /// The signal state most recently applied.
  const acoustics::ToneState& current_tone() const { return current_; }
  bool finished() const { return next_.is_infinite(); }

 private:
  Testbed& bed_;
  acoustics::AcousticSource source_;
  double distance_m_;
  sim::Duration interval_;
  sim::SimTime next_;
  acoustics::ToneState current_;
  bool was_active_ = false;
  bool retire_on_silence_ = true;
};

}  // namespace deepnote::core
