#include "core/scenario.h"

#include <stdexcept>

namespace deepnote::core {
namespace {

using structure::Mode;

/// Drive head-stack-assembly compliance modes, identical across scenarios
/// (property of the victim drive, not the container). CALIBRATED: peak
/// compliance ~0.2 nm/Pa at the 650-700 Hz suspension mode.
structure::ResonatorBank hsa_compliance_modes() {
  structure::ResonatorBank bank;
  bank.add_mode(Mode{.f0_hz = 450.0, .q = 2.2, .peak_gain_db = 38.0,
                     .label = "suspension sway"});
  bank.add_mode(Mode{.f0_hz = 700.0, .q = 2.5, .peak_gain_db = 40.0,
                     .label = "HSA bending"});
  bank.add_mode(Mode{.f0_hz = 1050.0, .q = 2.8, .peak_gain_db = 34.0,
                     .label = "HSA torsion"});
  return bank;
}

hdd::HddConfig make_hdd_config(std::uint64_t seed) {
  hdd::HddConfig cfg;
  cfg.geometry = hdd::Geometry::barracuda_500gb();

  cfg.servo.track_pitch_nm = 100.0;
  cfg.servo.write_fault_fraction = 0.10;  // Bolton et al.: writes tighter
  cfg.servo.read_fault_fraction = 0.20;
  cfg.servo.compliance_modes = hsa_compliance_modes();
  cfg.servo.compliance_floor_nm_per_pa = 0.002;
  cfg.servo.rejection_corner_hz = 420.0;  // lower band edge (CALIBRATED)
  cfg.servo.rejection_order = 4;
  cfg.servo.park_fraction = 0.25;         // sustained park at 25 nm
  cfg.servo.park_resume_s = 0.3;
  cfg.servo.false_trip_max_hz = 13.0;     // CALIBRATED: Table 1 read dip

  // CALIBRATED interface overheads: with the 100 us host submit cost the
  // no-attack FIO baselines land at 22.7 MB/s write, 18.0 MB/s read.
  cfg.command_overhead_write_s = 80.4e-6;
  cfg.command_overhead_read_s = 127.5e-6;

  cfg.write_cache_enabled = true;
  cfg.write_cache_bytes = 32ull << 20;
  cfg.lookahead_buffer_bytes = 2ull << 20;
  cfg.max_media_retries = 64;
  cfg.rng_seed = seed;
  return cfg;
}

storage::OsDeviceConfig make_os_device_config() {
  storage::OsDeviceConfig cfg;
  // CALIBRATED: 3 attempts x 25 s = 75 s from first submission to the
  // buffer I/O error, which together with the 5 s journal commit interval
  // reproduces the paper's ~80 s crash cadence (Table 3).
  cfg.command_timeout = sim::Duration::from_seconds(25.0);
  cfg.attempts = 3;
  return cfg;
}

structure::EnclosureSpec plastic_enclosure() {
  structure::EnclosureSpec spec;
  spec.material = structure::WallMaterial::hard_plastic();
  spec.mass_law_reference_db = 20.0;
  // Plastic tote panel modes: broad (damped), strong leakage low-mid.
  spec.panel_modes = {
      Mode{.f0_hz = 420.0, .q = 4.0, .peak_gain_db = 12.0,
           .label = "panel bending 1"},
      Mode{.f0_hz = 650.0, .q = 3.0, .peak_gain_db = 14.0,
           .label = "panel bending 2"},
      Mode{.f0_hz = 1150.0, .q = 3.0, .peak_gain_db = 12.0,
           .label = "panel bending 3"},
      Mode{.f0_hz = 1500.0, .q = 3.0, .peak_gain_db = 19.0,
           .label = "panel bending 4"},
  };
  return spec;
}

structure::EnclosureSpec aluminum_enclosure() {
  structure::EnclosureSpec spec;
  spec.material = structure::WallMaterial::aluminum();
  spec.mass_law_reference_db = 20.0;
  // Metal box: heavier wall (more broadband TL) but lightly damped modes
  // that ring hard — the attack stays effective at the modes, and dies
  // above ~1.3 kHz (paper Section 4.1).
  spec.panel_modes = {
      Mode{.f0_hz = 380.0, .q = 5.0, .peak_gain_db = 16.0,
           .label = "panel ring 1"},
      Mode{.f0_hz = 800.0, .q = 5.0, .peak_gain_db = 16.0,
           .label = "panel ring 2"},
      Mode{.f0_hz = 1250.0, .q = 5.0, .peak_gain_db = 22.0,
           .label = "panel ring 3"},
  };
  return spec;
}

structure::EnclosureSpec steel_vessel() {
  structure::EnclosureSpec spec;
  spec.material = structure::WallMaterial::steel();
  spec.mass_law_reference_db = 20.0;
  // A ~25 mm hull: enormous broadband TL; the low-frequency hull ring
  // modes leak a little, and the nitrogen fill couples slightly worse
  // than air (denser gas, but the rack is isolation-mounted).
  spec.panel_modes = {
      Mode{.f0_hz = 150.0, .q = 8.0, .peak_gain_db = 10.0,
           .label = "hull breathing"},
      Mode{.f0_hz = 520.0, .q = 6.0, .peak_gain_db = 8.0,
           .label = "hull bending"},
  };
  spec.interior_coupling_db = -3.0;
  return spec;
}

structure::MountSpec floor_mount() {
  structure::MountSpec spec;
  spec.name = "container floor";
  spec.broadband_coupling_db = 0.0;
  spec.modes = {
      Mode{.f0_hz = 500.0, .q = 3.0, .peak_gain_db = 4.0,
           .label = "floor slab"},
  };
  return spec;
}

structure::MountSpec tower_mount() {
  structure::MountSpec spec;
  spec.name = "5-bay storage tower";
  spec.broadband_coupling_db = -3.3;
  spec.modes = {
      Mode{.f0_hz = 350.0, .q = 4.0, .peak_gain_db = 8.0,
           .label = "tower frame"},
      Mode{.f0_hz = 680.0, .q = 4.0, .peak_gain_db = 10.0,
           .label = "bay rails"},
      Mode{.f0_hz = 1600.0, .q = 5.0, .peak_gain_db = 6.0,
           .label = "tower shell"},
  };
  return spec;
}

}  // namespace

const char* scenario_name(ScenarioId id) {
  switch (id) {
    case ScenarioId::kPlasticFloor: return "Scenario 1 (plastic, floor)";
    case ScenarioId::kPlasticTower: return "Scenario 2 (plastic, tower)";
    case ScenarioId::kMetalTower: return "Scenario 3 (aluminum, tower)";
    case ScenarioId::kSteelVessel:
      return "Extension (steel pressure vessel, tower)";
  }
  return "?";
}

ScenarioSpec make_scenario(ScenarioId id, std::uint64_t seed) {
  ScenarioSpec spec;
  spec.id = id;
  spec.name = scenario_name(id);
  spec.water = acoustics::WaterConditions::tank();
  // Near-field spherical spreading from the speaker calibration distance
  // (1 cm, matching the closest attack position in Table 1).
  spec.spreading = acoustics::SpreadingParams{
      .model = acoustics::SpreadingModel::kSpherical,
      .reference_distance_m = 0.01,
      .transition_range_m = 100.0,
  };
  spec.absorption = acoustics::AbsorptionModel::kFreshwater;

  switch (id) {
    case ScenarioId::kPlasticFloor:
      spec.enclosure = plastic_enclosure();
      spec.mount = floor_mount();
      break;
    case ScenarioId::kPlasticTower:
      spec.enclosure = plastic_enclosure();
      spec.mount = tower_mount();
      break;
    case ScenarioId::kMetalTower:
      spec.enclosure = aluminum_enclosure();
      spec.mount = tower_mount();
      break;
    case ScenarioId::kSteelVessel:
      spec.enclosure = steel_vessel();
      spec.mount = tower_mount();
      // Deployed vessels sit in open sea water, not the lab tank.
      spec.water = acoustics::WaterConditions::ocean(36.0);
      spec.absorption = acoustics::AbsorptionModel::kAinslieMcColm;
      break;
    default:
      throw std::invalid_argument("unknown scenario");
  }

  spec.hdd = make_hdd_config(seed);
  spec.os_device = make_os_device_config();
  spec.fio_submit_overhead = sim::Duration::from_micros(100);
  return spec;
}

}  // namespace deepnote::core
