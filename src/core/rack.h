// Multi-drive rack testbed.
//
// The paper's Scenario 2/3 tower is a 5-in-3 hot-swap cage holding one
// victim drive in the second bay. A real deployment fills every bay; the
// bays do not couple to the enclosure field identically — bays nearer
// the incident wall see more excitation. This testbed models a full
// tower: one structural chain per bay with a per-bay coupling offset,
// and an independent drive + OS block device per bay.
//
// Used by the rack ablation bench to show partial-rack kills: an attack
// tone can take out the near bays while far bays keep serving.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "core/attack.h"
#include "core/scenario.h"
#include "hdd/drive.h"
#include "storage/os_device.h"
#include "structure/chain.h"

namespace deepnote::core {

struct RackConfig {
  ScenarioId scenario = ScenarioId::kPlasticTower;
  std::size_t bays = 5;
  /// Coupling offset of bay 0 (closest to the incident wall), dB.
  double near_bay_gain_db = 1.5;
  /// Additional offset per bay moving away from the wall, dB (negative).
  double per_bay_step_db = -2.0;
  std::uint64_t seed = 0x4acc;
  /// Override the scenario's OS block-layer config (the cluster layer
  /// runs datacenter-tuned command timeouts instead of desktop defaults).
  std::optional<storage::OsDeviceConfig> os_device;
  /// Override spec.hdd.retain_data (timing-only serving keeps no bytes).
  std::optional<bool> retain_data;
};

class RackTestbed {
 public:
  explicit RackTestbed(RackConfig config);

  std::size_t bays() const { return drives_.size(); }

  /// Apply/retune the attack on every bay.
  void apply_attack(sim::SimTime now, const AttackConfig& attack);
  void stop_attack(sim::SimTime now);

  /// Predicted head off-track amplitude at bay `i` (nm), non-mutating.
  double predicted_offtrack_nm(std::size_t bay,
                               const AttackConfig& attack) const;

  hdd::Hdd& drive(std::size_t bay) { return *drives_.at(bay); }
  storage::OsBlockDevice& device(std::size_t bay) {
    return *devices_.at(bay);
  }
  const ScenarioSpec& spec() const { return spec_; }
  double bay_offset_db(std::size_t bay) const;

  /// Count of bays currently parked by the shock sensor.
  std::size_t parked_bays() const;

 private:
  structure::DriveExcitation excitation_for(std::size_t bay,
                                            const AttackConfig& attack) const;

  RackConfig config_;
  ScenarioSpec spec_;
  acoustics::PropagationPath path_;
  std::vector<structure::StructuralChain> chains_;  // one per bay
  std::vector<std::unique_ptr<hdd::Hdd>> drives_;
  std::vector<std::unique_ptr<storage::OsBlockDevice>> devices_;
};

}  // namespace deepnote::core
