// Range testing (paper Section 4.2, Tables 1 and 2).
//
// Sweeps the speaker-to-enclosure distance at the fixed best-attack
// frequency (650 Hz) and measures FIO read/write throughput + latency
// (Table 1) and the RocksDB-like store under readwhilewriting (Table 2).
//
// Rows are independent deterministic trials fanned across a
// sim::TaskPool (config.jobs; $DEEPNOTE_JOBS or all cores by default);
// output is bit-identical at any thread count.
#pragma once

#include <optional>
#include <vector>

#include "core/attack.h"
#include "core/scenario.h"
#include "workload/db_bench.h"
#include "workload/fio.h"

namespace deepnote::core {

struct RangeTestConfig {
  /// Distances in meters; nullopt = the "No Attack" row.
  std::vector<std::optional<double>> distances_m = {
      std::nullopt, 0.01, 0.05, 0.10, 0.15, 0.20, 0.25};
  AttackConfig attack;  ///< distance overridden per row
  sim::Duration ramp = sim::Duration::from_seconds(5.0);
  sim::Duration duration = sim::Duration::from_seconds(30.0);
  std::uint64_t seed = 0x7a8;
  /// Worker threads; 0 = $DEEPNOTE_JOBS or all cores.
  unsigned jobs = 0;
};

struct FioRangeRow {
  std::optional<double> distance_m;  ///< nullopt = no attack
  workload::FioReport read;
  workload::FioReport write;
};

struct KvRangeRow {
  std::optional<double> distance_m;
  workload::DbBenchReport report;
};

class RangeTest {
 public:
  explicit RangeTest(ScenarioId scenario = ScenarioId::kPlasticTower)
      : scenario_(scenario) {}

  /// Table 1: FIO sequential read & write per distance.
  std::vector<FioRangeRow> run_fio(const RangeTestConfig& config) const;

  /// Table 2: readwhilewriting on the LSM store per distance.
  std::vector<KvRangeRow> run_kvdb(const RangeTestConfig& config,
                                   const workload::DbBenchConfig& bench,
                                   const storage::kvdb::DbConfig& db) const;

 private:
  ScenarioId scenario_;
};

}  // namespace deepnote::core
