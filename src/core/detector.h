// Acoustic-attack detector (paper Section 5.1 future work: "evaluation
// of potential underwater defense strategies" — detection comes first).
//
// The attack's signature at the host is distinctive: I/O latency jumps by
// orders of magnitude and error/retry counters climb while the workload
// itself is unchanged. The detector keeps an exponentially-weighted
// latency baseline per operation class and raises an alert when recent
// latencies run far above baseline or commands start failing/hanging —
// the signal a datacenter health monitor would act on (e.g. migrate data
// off the pod, trigger an acoustic sweep for the source).
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.h"

namespace deepnote::core {

struct DetectorConfig {
  /// EWMA smoothing for the baseline (per completed op).
  double baseline_alpha = 0.01;
  /// Alert when the recent-latency EWMA exceeds baseline by this factor.
  double latency_factor = 8.0;
  /// Faster EWMA tracking "recent" latency.
  double recent_alpha = 0.2;
  /// Alert immediately after this many consecutive command errors.
  std::uint32_t error_burst = 3;
  /// Ops to observe before the baseline is trusted.
  std::uint32_t warmup_ops = 200;
};

class AttackDetector {
 public:
  explicit AttackDetector(DetectorConfig config = {});

  /// Feed one completed operation.
  void record_ok(sim::SimTime completed, double latency_s);
  /// Feed one failed (or timed-out) operation.
  void record_error(sim::SimTime completed);

  bool alerted() const { return alerted_; }
  sim::SimTime alert_time() const { return alert_time_; }
  const std::string& alert_reason() const { return alert_reason_; }

  double baseline_latency_s() const { return baseline_; }
  double recent_latency_s() const { return recent_; }
  std::uint64_t ops_seen() const { return ops_; }

  /// Clear the alert (operator acknowledged); baselines are kept.
  void acknowledge();

 private:
  void raise(sim::SimTime when, std::string reason);

  DetectorConfig config_;
  double baseline_ = 0.0;
  double recent_ = 0.0;
  std::uint64_t ops_ = 0;
  std::uint32_t consecutive_errors_ = 0;
  bool alerted_ = false;
  sim::SimTime alert_time_ = sim::SimTime::zero();
  std::string alert_reason_;
};

}  // namespace deepnote::core
