#include "core/report.h"

#include <iostream>
#include <string_view>

#include <cmath>
#include <cstdio>

namespace deepnote::core {

std::string format_distance(const std::optional<double>& distance_m) {
  if (!distance_m.has_value()) return "No Attack";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g cm", *distance_m * 100.0);
  return buf;
}

namespace {

/// Latency is reported only when the job was responsive; low-throughput
/// responses are reported as "-" (the paper's convention for a drive
/// that stops serving I/O).
std::optional<double> latency_cell(const workload::FioReport& report) {
  return report.latency_ms;
}

}  // namespace

sim::Table format_table1(const std::vector<FioRangeRow>& rows) {
  sim::Table t(
      "Table 1: FIO throughput/latency vs attack distance (650 Hz, "
      "Scenario 2)");
  t.set_columns({"Distance", "Read MB/s", "Write MB/s", "Read lat ms",
                 "Write lat ms"});
  for (const auto& row : rows) {
    t.row()
        .cell(format_distance(row.distance_m))
        .cell(row.read.throughput_mbps, 1)
        .cell(row.write.throughput_mbps, 1)
        .cell_or_dash(latency_cell(row.read), 1)
        .cell_or_dash(latency_cell(row.write), 1);
  }
  return t;
}

sim::Table format_table2(const std::vector<KvRangeRow>& rows) {
  sim::Table t(
      "Table 2: RocksDB-like store under readwhilewriting vs attack "
      "distance (650 Hz, Scenario 2)");
  t.set_columns({"Distance", "Throughput MB/s", "I/O rate x100k ops/s"});
  for (const auto& row : rows) {
    t.row()
        .cell(format_distance(row.distance_m))
        .cell(row.report.throughput_mbps, 1)
        .cell(row.report.ops_per_second / 1e5, 1);
  }
  return t;
}

sim::Table format_table3(const std::vector<CrashRow>& rows) {
  sim::Table t("Table 3: crashes in real-world applications (650 Hz, "
               "140 dB SPL, 1 cm, Scenario 2)");
  t.set_columns({"Application", "Description", "Time to crash", "Error"});
  for (const auto& row : rows) {
    t.row().cell(row.application).cell(row.description);
    if (row.result.crashed) {
      t.cell(sim::format_fixed(row.result.time_to_crash_s, 1) + " seconds");
      t.cell(row.result.error_output);
    } else {
      t.dash().cell("no crash observed");
    }
  }
  return t;
}

sim::Table format_figure2(
    const std::vector<std::pair<std::string, std::vector<SweepPoint>>>&
        series,
    bool write_side) {
  sim::Table t(write_side
                   ? "Figure 2a: sequential WRITE throughput vs frequency"
                   : "Figure 2b: sequential READ throughput vs frequency");
  std::vector<std::string> headers{"Frequency Hz"};
  for (const auto& [name, _] : series) headers.push_back(name + " MB/s");
  t.set_columns(headers);
  if (series.empty()) return t;
  const std::size_t n = series.front().second.size();
  for (std::size_t i = 0; i < n; ++i) {
    t.row().cell(sim::format_fixed(series.front().second[i].frequency_hz, 0));
    for (const auto& [_, points] : series) {
      const auto& report =
          write_side ? points[i].write : points[i].read;
      t.cell(report.throughput_mbps, 1);
    }
  }
  return t;
}


void print_table(const sim::Table& table, int argc, char** argv) {
  std::string_view mode;
  if (argc > 1) mode = argv[1];
  if (mode == "--csv") {
    std::cout << table.to_csv() << "\n";
  } else if (mode == "--md" || mode == "--markdown") {
    std::cout << table.to_markdown() << "\n";
  } else {
    std::cout << table << "\n";
  }
}

}  // namespace deepnote::core
