#include "hdd/smart.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace deepnote::hdd {
namespace {

/// Vendor-style normalisation: 100 while the rate is tiny, dropping on a
/// log scale as events accumulate relative to work done.
int normalise(std::uint64_t events, std::uint64_t per, double scale) {
  if (events == 0) return 100;
  const double rate =
      static_cast<double>(events) / std::max<std::uint64_t>(per, 1);
  const int drop = static_cast<int>(std::log10(1.0 + rate * scale) * 30.0);
  return std::clamp(100 - drop, 1, 100);
}

}  // namespace

const SmartAttribute* SmartLog::find(int id) const {
  for (const auto& a : attributes) {
    if (a.id == id) return &a;
  }
  return nullptr;
}

bool SmartLog::healthy() const {
  for (const auto& a : attributes) {
    if (a.failing_now()) return false;
  }
  return true;
}

std::string SmartLog::to_text() const {
  std::ostringstream os;
  os << "ID   ATTRIBUTE                 VALUE  THRESH  RAW\n";
  for (const auto& a : attributes) {
    char line[128];
    std::snprintf(line, sizeof(line), "%-4d %-25s %5d  %6d  %llu%s\n", a.id,
                  a.name.c_str(), a.normalized, a.threshold,
                  static_cast<unsigned long long>(a.raw_value),
                  a.failing_now() ? "  FAILING_NOW" : "");
    os << line;
  }
  return os.str();
}

SmartAttribute media_wearout_attribute(double mean_erase_cycles,
                                       std::uint32_t rated_erase_cycles) {
  const double used =
      mean_erase_cycles / std::max<std::uint32_t>(rated_erase_cycles, 1);
  // Wearout counts down linearly with consumed endurance (Samsung/Intel
  // style), bottoming out at 1 rather than 0 like the other attributes.
  const int normalized =
      std::clamp(100 - static_cast<int>(used * 100.0), 1, 100);
  return SmartAttribute{kAttrMediaWearout, "Media_Wearout_Indicator",
                        static_cast<std::uint64_t>(mean_erase_cycles + 0.5),
                        normalized, 10};
}

SmartLog smart_log(const Hdd& drive) {
  const HddStats& s = drive.stats();
  const std::uint64_t ops = s.reads + s.writes + s.flushes;

  SmartLog log;
  log.attributes.push_back(SmartAttribute{
      kAttrRawReadErrorRate, "Raw_Read_Error_Rate", s.media_retries,
      normalise(s.media_retries, ops, 100.0), 44});
  log.attributes.push_back(SmartAttribute{
      kAttrPowerOnIoCount, "Power_On_IO_Count", ops, 100, 0});
  log.attributes.push_back(SmartAttribute{
      kAttrRetrySectorEvents, "Retried_Sector_Events", s.media_retries,
      normalise(s.media_retries, ops, 50.0), 50});
  log.attributes.push_back(SmartAttribute{
      kAttrUncorrectableErrors, "Reported_Uncorrect", s.media_errors,
      normalise(s.media_errors, std::max<std::uint64_t>(ops, 1), 5000.0),
      90});
  log.attributes.push_back(SmartAttribute{
      kAttrCommandTimeout, "Command_Timeout", s.hung_commands,
      normalise(s.hung_commands, std::max<std::uint64_t>(ops, 1), 5000.0),
      90});
  log.attributes.push_back(SmartAttribute{
      kAttrLoadCycleCount, "Load_Cycle_Count", s.shock_parks,
      normalise(s.shock_parks, std::max<std::uint64_t>(ops, 1), 2000.0),
      75});
  return log;
}

}  // namespace deepnote::hdd
