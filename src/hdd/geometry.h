// Drive geometry: platters, zones, LBA -> physical mapping.
//
// Models a zoned-bit-recording 3.5" drive. Outer zones pack more sectors
// per track, so media transfer rate falls toward the inner diameter. The
// default preset approximates the paper's victim drive (Seagate Barracuda
// 500 GB, 7200 rpm, one platter / two heads).
#pragma once

#include <cstdint>
#include <vector>

namespace deepnote::hdd {

inline constexpr std::uint32_t kSectorSize = 512;

struct Zone {
  std::uint32_t first_cylinder = 0;
  std::uint32_t cylinders = 0;
  std::uint32_t sectors_per_track = 0;
};

struct PhysicalAddress {
  std::uint32_t cylinder = 0;
  std::uint32_t head = 0;
  std::uint32_t sector = 0;  ///< sector index within the track
  std::uint32_t zone = 0;
};

class Geometry {
 public:
  /// Builds a geometry from explicit zones. `heads` surfaces per cylinder.
  Geometry(std::uint32_t heads, double rpm, double track_pitch_nm,
           std::vector<Zone> zones);

  /// The paper's victim: Seagate Barracuda-class 500 GB desktop drive.
  /// 7200 rpm, 2 heads, 16 zones from 2400 down to 1200 sectors/track.
  static Geometry barracuda_500gb();

  /// Small geometry for fast unit tests (a few thousand sectors).
  static Geometry tiny_test_drive();

  std::uint64_t total_sectors() const { return total_sectors_; }
  std::uint64_t capacity_bytes() const {
    return total_sectors_ * kSectorSize;
  }
  std::uint32_t heads() const { return heads_; }
  std::uint32_t total_cylinders() const { return total_cylinders_; }
  double rpm() const { return rpm_; }
  /// One revolution, in seconds.
  double revolution_s() const { return 60.0 / rpm_; }
  /// Track pitch (center-to-center distance between adjacent tracks), nm.
  double track_pitch_nm() const { return track_pitch_nm_; }
  const std::vector<Zone>& zones() const { return zones_; }

  /// Maps an LBA to its physical location. Throws std::out_of_range for
  /// LBAs beyond the device.
  PhysicalAddress locate(std::uint64_t lba) const;

  /// Sectors per track at the given LBA's zone.
  std::uint32_t sectors_per_track_at(std::uint64_t lba) const;

  /// Sustained media transfer rate at the LBA's zone, bytes/second
  /// (sectors_per_track * sector_size / revolution).
  double media_rate_bps(std::uint64_t lba) const;

 private:
  std::uint32_t heads_;
  double rpm_;
  double track_pitch_nm_;
  std::vector<Zone> zones_;
  std::vector<std::uint64_t> zone_first_lba_;  // per zone, then total
  std::uint32_t total_cylinders_ = 0;
  std::uint64_t total_sectors_ = 0;
};

}  // namespace deepnote::hdd
