// Track-following servo under acoustic disturbance.
//
// Mechanism (Bolton et al. 2018, the paper's reference [6]): acoustic
// pressure shakes the head-stack assembly (HSA); the read/write head must
// stay within a fraction of the track pitch to access data — roughly 10%
// of the pitch for writes and a wider margin for reads. The servo loop
// rejects low-frequency disturbance but HSA/suspension resonances defeat
// it in a band of frequencies.
//
// Model:
//  * Compliance: off-track displacement per unit pressure, nm/Pa, as a
//    bank of HSA modes (resonator.h) on top of a small broadband floor.
//  * For a sinusoidal disturbance of amplitude A (nm) and threshold T
//    (nm), the head is on-track during the fraction
//        w = (2/pi) * asin(T/A)          (A > T; w = 1 otherwise)
//    of each disturbance half-period (the "good window").
//  * A media access of duration t_access succeeds if it fits inside a good
//    window; for t_access much shorter than the disturbance period the
//    per-attempt success probability is  p = max(0, w - 2 f t_access).
//  * A failed attempt costs one platter revolution (the sector must come
//    around again).
//  * The shock sensor parks the heads when the disturbance exceeds a park
//    threshold (sustained unavailability: the drive stops responding);
//    near the threshold it false-trips stochastically, each trip costing
//    a park/resume cycle.
#pragma once

#include <cstdint>

#include "structure/chain.h"
#include "structure/resonator.h"

namespace deepnote::hdd {

enum class AccessKind { kRead, kWrite };

struct ServoConfig {
  double track_pitch_nm = 100.0;
  /// Off-track write fault threshold as a fraction of track pitch.
  double write_fault_fraction = 0.10;
  /// Read fault threshold fraction (reads tolerate more off-track).
  double read_fault_fraction = 0.20;
  /// HSA compliance: modes define resonances; peak gain is interpreted in
  /// dB relative to `compliance_floor_nm_per_pa`.
  structure::ResonatorBank compliance_modes;
  double compliance_floor_nm_per_pa = 0.002;
  /// Track-following loop disturbance rejection: the servo attenuates
  /// disturbances below its effective corner (sensitivity magnitude
  /// ~ r^n/(1+r^n), r = f/corner). This sets the lower edge of the
  /// vulnerable band (~300 Hz in the paper's scenarios).
  double rejection_corner_hz = 420.0;
  int rejection_order = 4;
  /// Shock sensor: sustained park when off-track amplitude exceeds
  /// park_fraction * track_pitch; false-trip rate ramps up as the
  /// amplitude approaches that threshold.
  double park_fraction = 0.25;
  double park_resume_s = 0.3;     ///< cost of one park/resume cycle
  double false_trip_max_hz = 6.0; ///< false-trip rate at the park threshold
};

/// The servo's view of the current disturbance: computed once per
/// excitation change, then consulted per access.
struct ServoState {
  double frequency_hz = 0.0;
  double offtrack_amplitude_nm = 0.0;
  bool parked = false;          ///< sustained shock-sensor park
  double false_trip_rate_hz = 0.0;
};

class Servo {
 public:
  explicit Servo(ServoConfig config);

  const ServoConfig& config() const { return config_; }

  /// Compliance magnitude at f, nm/Pa.
  double compliance_nm_per_pa(double frequency_hz) const;

  /// Evaluate the servo state for a given drive excitation.
  ServoState evaluate(const structure::DriveExcitation& excitation) const;

  /// Fault threshold in nm for the given access kind.
  double fault_threshold_nm(AccessKind kind) const;

  /// On-track fraction of time ("good window") for the given state/kind.
  double good_window_fraction(const ServoState& state, AccessKind kind) const;

  /// Probability that a single media access of duration `access_s`
  /// completes within a good window.
  double attempt_success_probability(const ServoState& state, AccessKind kind,
                                     double access_s) const;

 private:
  ServoConfig config_;
};

}  // namespace deepnote::hdd
