// SMART-style health attributes derived from the drive's counters.
//
// An acoustic attack leaves a distinctive fingerprint in a drive's SMART
// log: retries and recovered errors spike, the load-cycle (head park)
// count climbs, commands time out — while the medium itself stays
// healthy. Surfacing that fingerprint is the first step toward the
// detection-based defenses the paper's Section 5.1 calls for.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hdd/drive.h"

namespace deepnote::hdd {

struct SmartAttribute {
  int id = 0;
  std::string name;
  std::uint64_t raw_value = 0;
  /// Normalised health 1..100 (100 = perfect), vendor-style.
  int normalized = 100;
  int threshold = 0;
  bool failing_now() const { return normalized <= threshold; }
};

struct SmartLog {
  std::vector<SmartAttribute> attributes;

  const SmartAttribute* find(int id) const;
  /// Overall assessment: any attribute at/below threshold.
  bool healthy() const;
  std::string to_text() const;
};

/// Derive the SMART view from the drive's lifetime counters.
SmartLog smart_log(const Hdd& drive);

/// SSD-style wear-leveling health (attribute 177): the fraction of rated
/// program/erase endurance consumed, from the flash tier's mean per-block
/// erase count. Takes plain numbers so the HDD library stays independent
/// of the flash model; the hybrid node (cluster/hybrid.h) feeds it from
/// FlashDevice wear counters for its telemetry.
SmartAttribute media_wearout_attribute(double mean_erase_cycles,
                                       std::uint32_t rated_erase_cycles);

/// Well-known attribute ids used by the log.
inline constexpr int kAttrRawReadErrorRate = 1;
inline constexpr int kAttrPowerOnIoCount = 9;
inline constexpr int kAttrRetrySectorEvents = 13;
inline constexpr int kAttrMediaWearout = 177;
inline constexpr int kAttrCommandTimeout = 188;
inline constexpr int kAttrLoadCycleCount = 193;
inline constexpr int kAttrUncorrectableErrors = 187;

}  // namespace deepnote::hdd
