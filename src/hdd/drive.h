// Event-driven (virtual-time) hard disk drive model.
//
// The drive is the victim of the acoustic attack. It executes reads,
// writes and cache flushes in *simulated* time: each call takes the
// caller's current SimTime and returns the operation's completion time
// and status, advancing internal lazily-maintained state (write-cache
// fill, look-ahead prefetch, shock-sensor trips).
//
// Timing model
// ------------
//  * Host writes land in the volatile write-back cache at interface cost;
//    a background drain empties the cache to media. When the cache is
//    full the host write blocks until the drain frees a slot.
//  * Sequential host reads are fed by a look-ahead prefetcher that
//    streams from media into a bounded buffer; a hit costs only the
//    interface overhead, a dry buffer blocks the reader on the media.
//  * Random reads pay seek + rotational latency + transfer.
//  * Every media access runs under the servo model: a failed attempt
//    costs one revolution (the sector must come around again). A command
//    that exhausts its retry budget completes with kMediaError.
//  * The shock sensor parks the heads above its threshold; a parked drive
//    does not serve media at all (ops report kHung and never complete —
//    the OS layer above imposes its own command timeout). Near the
//    threshold the sensor false-trips stochastically, freezing the media
//    path for a park/resume cycle each time.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "hdd/geometry.h"
#include "hdd/sector_store.h"
#include "hdd/servo.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace deepnote::hdd {

enum class IoStatus {
  kOk,
  kMediaError,  ///< retry budget exhausted; the command failed
  kHung,        ///< drive is not responding (heads parked / zero window)
};

struct IoResult {
  IoStatus status = IoStatus::kOk;
  sim::SimTime complete = sim::SimTime::zero();  ///< infinity when hung
  std::uint32_t media_retries = 0;

  bool ok() const { return status == IoStatus::kOk; }
};

struct HddConfig {
  Geometry geometry = Geometry::barracuda_500gb();
  ServoConfig servo;

  // Mechanics.
  double seek_track_to_track_s = 0.0008;
  double seek_full_stroke_s = 0.018;

  // Interface / firmware command overheads (calibrated so the paper's
  // no-attack FIO baselines hold: see core/scenario.cc).
  double command_overhead_read_s = 100e-6;
  double command_overhead_write_s = 60e-6;

  // Write-back cache.
  bool write_cache_enabled = true;
  std::uint64_t write_cache_bytes = 32ull << 20;

  // Look-ahead prefetch buffer for sequential reads.
  std::uint64_t lookahead_buffer_bytes = 2ull << 20;
  /// A read within this LBA distance of the previous one counts as
  /// sequential for the prefetcher.
  std::uint64_t sequential_window_sectors = 256;

  // Per-command media retry budget before giving up with kMediaError.
  std::uint32_t max_media_retries = 64;

  /// When false, written bytes are not retained (reads return zeros).
  /// Timing behaviour is identical; raw-device throughput benches disable
  /// retention to avoid gigabytes of backing memory.
  bool retain_data = true;

  std::uint64_t rng_seed = 0xd15cull;
};

struct HddStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t flushes = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t media_retries = 0;
  std::uint64_t media_errors = 0;
  std::uint64_t hung_commands = 0;
  std::uint64_t shock_parks = 0;  ///< false-trip park/resume cycles
};

class Hdd {
 public:
  explicit Hdd(HddConfig config);

  /// Update the acoustic excitation acting on the drive. Must be called
  /// with a monotonically non-decreasing `now`.
  void set_excitation(sim::SimTime now,
                      const structure::DriveExcitation& excitation);

  /// Submit a read of `sector_count` sectors at `lba`. `out` receives the
  /// data (sized sector_count * 512) when the status is kOk. If the
  /// command cannot complete by `deadline` it reports kHung with no side
  /// effects (the host command timer will fire and reset the device).
  IoResult read(sim::SimTime now, std::uint64_t lba,
                std::uint32_t sector_count, std::span<std::byte> out,
                sim::SimTime deadline = sim::SimTime::infinity());

  /// Submit a write. Data becomes durable when the cache drains (or
  /// immediately if the write cache is disabled).
  IoResult write(sim::SimTime now, std::uint64_t lba,
                 std::uint32_t sector_count, std::span<const std::byte> in,
                 sim::SimTime deadline = sim::SimTime::infinity());

  /// FLUSH CACHE: completes when every cached write has reached media.
  IoResult flush(sim::SimTime now,
                 sim::SimTime deadline = sim::SimTime::infinity());

  /// Simulated power loss: volatile cache contents are dropped. Durable
  /// data is unaffected. Used by crash-consistency tests.
  void power_cut();

  /// Device reset, as issued by the OS error handler after a command
  /// timeout (SCSI bus reset). Aborts whatever the media path is stuck on;
  /// the drive is ready again after a short recovery. State (cache
  /// contents, servo excitation) is preserved.
  void reset(sim::SimTime now);

  /// True while the shock sensor holds the heads parked.
  bool parked() const { return servo_state_.parked; }

  const ServoState& servo_state() const { return servo_state_; }
  const HddStats& stats() const { return stats_; }
  const Geometry& geometry() const { return config_.geometry; }
  const Servo& servo() const { return servo_; }
  const HddConfig& config() const { return config_; }

  /// Bytes currently pending in the write cache (after lazy drain to
  /// `now`). Mutates lazily-maintained state.
  std::uint64_t cached_bytes(sim::SimTime now);

 private:
  struct PendingWrite {
    std::uint64_t lba;
    std::uint32_t sector_count;
    std::vector<std::byte> data;
  };

  /// Advance lazily-maintained background state (cache drain, prefetch
  /// fill, shock false trips) to `now`.
  void advance(sim::SimTime now);

  /// Expected media time for one sequential 4 KiB-ish unit at `lba` under
  /// the current servo state; infinity-signal (<=0 rate) when blocked.
  double expected_media_unit_s(AccessKind kind, std::uint64_t lba) const;

  /// Sample the media time for an access of `bytes` at `lba` including
  /// servo retries. Returns nullopt when the access cannot complete
  /// (zero window). Adds to retry counters.
  std::optional<double> sample_media_time(AccessKind kind, std::uint64_t lba,
                                          std::uint32_t sector_count,
                                          std::uint32_t* retries_out);

  double seek_time_s(std::uint32_t from_cyl, std::uint32_t to_cyl) const;

  /// Media availability in [0,1]: share of wall time the media path is
  /// usable, accounting for shock-sensor false trips.
  double media_availability() const;

  void drain_fully(sim::SimTime now);

  /// Write the oldest cached entry to media and drop it from the cache.
  void pop_front_to_media();

  HddConfig config_;
  Servo servo_;
  ServoState servo_state_;
  sim::Rng rng_;

  SectorStore durable_;
  SectorStore cache_overlay_;
  std::deque<PendingWrite> cache_fifo_;
  /// Per-sector count of pending cached writes; reads prefer the overlay
  /// while a sector has any pending write.
  std::unordered_map<std::uint64_t, std::uint32_t> pending_counts_;
  std::uint64_t cache_bytes_ = 0;

  // Lazy background-state cursor.
  sim::SimTime bg_cursor_ = sim::SimTime::zero();
  sim::SimTime next_trip_ = sim::SimTime::infinity();
  double drain_credit_bytes_ = 0.0;
  double prefetch_bytes_ = 0.0;
  std::uint64_t prefetch_next_lba_ = 0;
  std::uint64_t last_read_end_lba_ = 0;
  bool prefetch_active_ = false;

  // Device busy bookkeeping (single command channel).
  sim::SimTime interface_free_at_ = sim::SimTime::zero();
  sim::SimTime media_free_at_ = sim::SimTime::zero();

  std::uint32_t head_cylinder_ = 0;

  HddStats stats_;
};

}  // namespace deepnote::hdd
