#include "hdd/servo.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace deepnote::hdd {

Servo::Servo(ServoConfig config) : config_(std::move(config)) {
  if (config_.track_pitch_nm <= 0 || config_.write_fault_fraction <= 0 ||
      config_.read_fault_fraction <= 0) {
    throw std::invalid_argument("servo: thresholds must be positive");
  }
  if (config_.read_fault_fraction < config_.write_fault_fraction) {
    throw std::invalid_argument(
        "servo: read tolerance must be >= write tolerance");
  }
}

double Servo::compliance_nm_per_pa(double frequency_hz) const {
  const double floor = config_.compliance_floor_nm_per_pa;
  if (config_.compliance_modes.empty()) return floor;
  const double modal_db = config_.compliance_modes.response_db(frequency_hz);
  // Modes are specified in dB relative to the broadband floor; total
  // compliance is floor + modal contribution (power sum keeps overlapping
  // modes additive).
  return floor * (1.0 + std::pow(10.0, modal_db / 20.0));
}

ServoState Servo::evaluate(
    const structure::DriveExcitation& excitation) const {
  ServoState st;
  if (!excitation.active || excitation.pressure_pa <= 0.0) return st;
  st.frequency_hz = excitation.frequency_hz;
  double amplitude =
      excitation.pressure_pa * compliance_nm_per_pa(excitation.frequency_hz);
  // Servo-loop disturbance rejection (high-pass sensitivity).
  if (config_.rejection_corner_hz > 0.0) {
    const double r = excitation.frequency_hz / config_.rejection_corner_hz;
    const double rn = std::pow(r, std::max(config_.rejection_order, 1));
    amplitude *= rn / (1.0 + rn);
  }
  st.offtrack_amplitude_nm = amplitude;

  const double park_threshold_nm =
      config_.park_fraction * config_.track_pitch_nm;
  const double ratio = st.offtrack_amplitude_nm / park_threshold_nm;
  if (ratio >= 1.0) {
    st.parked = true;
    st.false_trip_rate_hz = 0.0;  // moot: the drive is already parked
    return st;
  }
  // False trips become likely as the shock sensor approaches its
  // threshold; quadratic ramp starting at 40% of the park amplitude.
  constexpr double kRampStart = 0.4;
  if (ratio > kRampStart) {
    const double x = (ratio - kRampStart) / (1.0 - kRampStart);
    st.false_trip_rate_hz = config_.false_trip_max_hz * x * x;
  }
  return st;
}

double Servo::fault_threshold_nm(AccessKind kind) const {
  const double frac = kind == AccessKind::kWrite
                          ? config_.write_fault_fraction
                          : config_.read_fault_fraction;
  return frac * config_.track_pitch_nm;
}

double Servo::good_window_fraction(const ServoState& state,
                                   AccessKind kind) const {
  if (state.parked) return 0.0;
  const double amplitude = state.offtrack_amplitude_nm;
  if (amplitude <= 0.0) return 1.0;
  const double threshold = fault_threshold_nm(kind);
  if (amplitude <= threshold) return 1.0;
  return (2.0 / M_PI) * std::asin(threshold / amplitude);
}

double Servo::attempt_success_probability(const ServoState& state,
                                          AccessKind kind,
                                          double access_s) const {
  const double w = good_window_fraction(state, kind);
  if (w >= 1.0) return 1.0;
  if (w <= 0.0) return 0.0;
  // The access must fit within one good window; windows recur twice per
  // disturbance period.
  const double penalty = 2.0 * state.frequency_hz * access_s;
  return std::clamp(w - penalty, 0.0, 1.0);
}

}  // namespace deepnote::hdd
