#include "hdd/sector_store.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace deepnote::hdd {

SectorStore::SectorStore(std::uint64_t total_sectors)
    : total_sectors_(total_sectors) {}

std::vector<std::byte>& SectorStore::chunk_for_write(std::uint64_t chunk_idx) {
  if (chunk_idx == cached_idx_) return *cached_chunk_;
  auto& chunk = chunks_[chunk_idx];
  if (chunk.empty()) {
    chunk.assign(static_cast<std::size_t>(kSectorsPerChunk) * kSectorSize,
                 std::byte{0});
  }
  cached_idx_ = chunk_idx;
  cached_chunk_ = &chunk;
  return chunk;
}

const std::vector<std::byte>* SectorStore::chunk_for_read(
    std::uint64_t chunk_idx) const {
  if (chunk_idx == cached_idx_) return cached_chunk_;
  auto it = chunks_.find(chunk_idx);
  if (it == chunks_.end()) return nullptr;
  cached_idx_ = chunk_idx;
  cached_chunk_ = const_cast<std::vector<std::byte>*>(&it->second);
  return &it->second;
}

void SectorStore::write(std::uint64_t lba, std::uint32_t sector_count,
                        std::span<const std::byte> data) {
  if (lba + sector_count > total_sectors_) {
    throw std::out_of_range("SectorStore::write beyond device");
  }
  if (data.size() != static_cast<std::size_t>(sector_count) * kSectorSize) {
    throw std::invalid_argument("SectorStore::write: size mismatch");
  }
  std::uint64_t s = lba;
  const std::uint64_t end = lba + sector_count;
  std::size_t src = 0;
  while (s < end) {
    const std::uint64_t chunk_idx = s / kSectorsPerChunk;
    const auto in_chunk = static_cast<std::uint32_t>(s % kSectorsPerChunk);
    const auto run = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(kSectorsPerChunk - in_chunk, end - s));
    auto& chunk = chunk_for_write(chunk_idx);
    std::memcpy(chunk.data() + static_cast<std::size_t>(in_chunk) * kSectorSize,
                data.data() + src,
                static_cast<std::size_t>(run) * kSectorSize);
    src += static_cast<std::size_t>(run) * kSectorSize;
    s += run;
  }
}

void SectorStore::read(std::uint64_t lba, std::uint32_t sector_count,
                       std::span<std::byte> out) const {
  if (lba + sector_count > total_sectors_) {
    throw std::out_of_range("SectorStore::read beyond device");
  }
  if (out.size() != static_cast<std::size_t>(sector_count) * kSectorSize) {
    throw std::invalid_argument("SectorStore::read: size mismatch");
  }
  std::uint64_t s = lba;
  const std::uint64_t end = lba + sector_count;
  std::size_t dst = 0;
  while (s < end) {
    const std::uint64_t chunk_idx = s / kSectorsPerChunk;
    const auto in_chunk = static_cast<std::uint32_t>(s % kSectorsPerChunk);
    const auto run = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(kSectorsPerChunk - in_chunk, end - s));
    const std::size_t bytes = static_cast<std::size_t>(run) * kSectorSize;
    const std::vector<std::byte>* chunk = chunk_for_read(chunk_idx);
    if (chunk == nullptr) {
      std::memset(out.data() + dst, 0, bytes);
    } else {
      std::memcpy(out.data() + dst,
                  chunk->data() +
                      static_cast<std::size_t>(in_chunk) * kSectorSize,
                  bytes);
    }
    dst += bytes;
    s += run;
  }
}

bool SectorStore::any_written(std::uint64_t lba,
                              std::uint32_t sector_count) const {
  if (sector_count == 0) return false;
  const std::uint64_t first = lba / kSectorsPerChunk;
  const std::uint64_t last = (lba + sector_count - 1) / kSectorsPerChunk;
  for (std::uint64_t c = first; c <= last; ++c) {
    if (c == cached_idx_ || chunks_.count(c) != 0) return true;
  }
  return false;
}

std::size_t SectorStore::allocated_bytes() const {
  return chunks_.size() * static_cast<std::size_t>(kSectorsPerChunk) *
         kSectorSize;
}

void SectorStore::clear() {
  chunks_.clear();
  cached_idx_ = kNoChunk;
  cached_chunk_ = nullptr;
}

}  // namespace deepnote::hdd
