#include "hdd/sector_store.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace deepnote::hdd {

SectorStore::SectorStore(std::uint64_t total_sectors)
    : total_sectors_(total_sectors) {}

void SectorStore::write(std::uint64_t lba, std::uint32_t sector_count,
                        std::span<const std::byte> data) {
  if (lba + sector_count > total_sectors_) {
    throw std::out_of_range("SectorStore::write beyond device");
  }
  if (data.size() != static_cast<std::size_t>(sector_count) * kSectorSize) {
    throw std::invalid_argument("SectorStore::write: size mismatch");
  }
  std::size_t src = 0;
  for (std::uint64_t s = lba; s < lba + sector_count; ++s) {
    const std::uint64_t chunk_idx = s / kSectorsPerChunk;
    const std::uint64_t in_chunk = s % kSectorsPerChunk;
    auto& chunk = chunks_[chunk_idx];
    if (chunk.empty()) {
      chunk.assign(static_cast<std::size_t>(kSectorsPerChunk) * kSectorSize,
                   std::byte{0});
    }
    std::memcpy(chunk.data() + in_chunk * kSectorSize, data.data() + src,
                kSectorSize);
    src += kSectorSize;
  }
}

void SectorStore::read(std::uint64_t lba, std::uint32_t sector_count,
                       std::span<std::byte> out) const {
  if (lba + sector_count > total_sectors_) {
    throw std::out_of_range("SectorStore::read beyond device");
  }
  if (out.size() != static_cast<std::size_t>(sector_count) * kSectorSize) {
    throw std::invalid_argument("SectorStore::read: size mismatch");
  }
  std::size_t dst = 0;
  for (std::uint64_t s = lba; s < lba + sector_count; ++s) {
    const std::uint64_t chunk_idx = s / kSectorsPerChunk;
    const std::uint64_t in_chunk = s % kSectorsPerChunk;
    auto it = chunks_.find(chunk_idx);
    if (it == chunks_.end()) {
      std::memset(out.data() + dst, 0, kSectorSize);
    } else {
      std::memcpy(out.data() + dst,
                  it->second.data() + in_chunk * kSectorSize, kSectorSize);
    }
    dst += kSectorSize;
  }
}

bool SectorStore::any_written(std::uint64_t lba,
                              std::uint32_t sector_count) const {
  for (std::uint64_t s = lba; s < lba + sector_count; ++s) {
    if (chunks_.count(s / kSectorsPerChunk) != 0) return true;
  }
  return false;
}

std::size_t SectorStore::allocated_bytes() const {
  return chunks_.size() * static_cast<std::size_t>(kSectorsPerChunk) *
         kSectorSize;
}

void SectorStore::clear() { chunks_.clear(); }

}  // namespace deepnote::hdd
