// Sparse sector-addressed byte store backing the drive model.
//
// Stores data in fixed-size chunks allocated on first write; unwritten
// sectors read back as zeroes (a freshly formatted drive). Used twice by
// the drive: once for durable (on-media) data and once as the volatile
// write-cache overlay.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "hdd/geometry.h"

namespace deepnote::hdd {

class SectorStore {
 public:
  /// `total_sectors` bounds addressing; reads/writes past it throw.
  explicit SectorStore(std::uint64_t total_sectors);

  void write(std::uint64_t lba, std::uint32_t sector_count,
             std::span<const std::byte> data);
  void read(std::uint64_t lba, std::uint32_t sector_count,
            std::span<std::byte> out) const;

  /// True if any sector in [lba, lba+count) has ever been written.
  bool any_written(std::uint64_t lba, std::uint32_t sector_count) const;

  std::uint64_t total_sectors() const { return total_sectors_; }
  /// Bytes of backing memory actually allocated.
  std::size_t allocated_bytes() const;

  void clear();

 private:
  static constexpr std::uint32_t kSectorsPerChunk = 256;  // 128 KiB chunks

  std::uint64_t total_sectors_;
  std::unordered_map<std::uint64_t, std::vector<std::byte>> chunks_;
};

}  // namespace deepnote::hdd
