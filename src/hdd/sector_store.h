// Sparse sector-addressed byte store backing the drive model.
//
// Stores data in fixed-size chunks allocated on first write; unwritten
// sectors read back as zeroes (a freshly formatted drive). Used twice by
// the drive: once for durable (on-media) data and once as the volatile
// write-cache overlay.
//
// I/O is run-coalesced: a span is split into at most
// ceil(count / kSectorsPerChunk) + 1 contiguous runs, each served with
// one chunk lookup and one memcpy, and the last-touched chunk is cached
// so repeated access to the same 128 KiB region skips the hash map
// entirely.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "hdd/geometry.h"

namespace deepnote::hdd {

class SectorStore {
 public:
  /// `total_sectors` bounds addressing; reads/writes past it throw.
  explicit SectorStore(std::uint64_t total_sectors);

  void write(std::uint64_t lba, std::uint32_t sector_count,
             std::span<const std::byte> data);
  void read(std::uint64_t lba, std::uint32_t sector_count,
            std::span<std::byte> out) const;

  /// True if any sector in [lba, lba+count) has ever been written.
  bool any_written(std::uint64_t lba, std::uint32_t sector_count) const;

  std::uint64_t total_sectors() const { return total_sectors_; }
  /// Bytes of backing memory actually allocated.
  std::size_t allocated_bytes() const;

  void clear();

 private:
  static constexpr std::uint32_t kSectorsPerChunk = 256;  // 128 KiB chunks
  static constexpr std::uint64_t kNoChunk = ~std::uint64_t{0};

  /// Chunk for writing, allocated (zero-filled) on first touch.
  std::vector<std::byte>& chunk_for_write(std::uint64_t chunk_idx);
  /// Chunk for reading; nullptr when never written.
  const std::vector<std::byte>* chunk_for_read(std::uint64_t chunk_idx) const;

  std::uint64_t total_sectors_;
  std::unordered_map<std::uint64_t, std::vector<std::byte>> chunks_;
  // Last-touched chunk cache. Pointers to mapped values are stable in
  // unordered_map (rehashing moves buckets, not nodes); clear()
  // invalidates.
  mutable std::uint64_t cached_idx_ = kNoChunk;
  mutable std::vector<std::byte>* cached_chunk_ = nullptr;
};

}  // namespace deepnote::hdd
