#include "hdd/geometry.h"

#include <stdexcept>
#include <utility>

namespace deepnote::hdd {

Geometry::Geometry(std::uint32_t heads, double rpm, double track_pitch_nm,
                   std::vector<Zone> zones)
    : heads_(heads),
      rpm_(rpm),
      track_pitch_nm_(track_pitch_nm),
      zones_(std::move(zones)) {
  if (heads_ == 0) throw std::invalid_argument("geometry: heads must be > 0");
  if (rpm_ <= 0) throw std::invalid_argument("geometry: rpm must be > 0");
  if (zones_.empty()) throw std::invalid_argument("geometry: no zones");
  std::uint64_t lba = 0;
  std::uint32_t cyl = 0;
  for (auto& z : zones_) {
    if (z.cylinders == 0 || z.sectors_per_track == 0) {
      throw std::invalid_argument("geometry: empty zone");
    }
    z.first_cylinder = cyl;
    zone_first_lba_.push_back(lba);
    lba += static_cast<std::uint64_t>(z.cylinders) * heads_ *
           z.sectors_per_track;
    cyl += z.cylinders;
  }
  zone_first_lba_.push_back(lba);
  total_sectors_ = lba;
  total_cylinders_ = cyl;
}

Geometry Geometry::barracuda_500gb() {
  // 16 zones, sectors/track tapering 2400 -> 1200 (outer to inner),
  // 17k cylinders per zone so that total capacity ~= 500 GB with two
  // heads. 2400 spt outer gives ~147 MB/s sustained at the OD, ~74 MB/s
  // at the ID — in line with a 7200.12-class desktop drive.
  std::vector<Zone> zones;
  constexpr std::uint32_t kZones = 16;
  constexpr std::uint32_t kCylindersPerZone = 17000;
  for (std::uint32_t i = 0; i < kZones; ++i) {
    const std::uint32_t spt = 2400 - i * 80;  // 2400 .. 1200
    zones.push_back(Zone{.first_cylinder = 0,
                         .cylinders = kCylindersPerZone,
                         .sectors_per_track = spt});
  }
  return Geometry{/*heads=*/2, /*rpm=*/7200.0, /*track_pitch_nm=*/100.0,
                  std::move(zones)};
}

Geometry Geometry::tiny_test_drive() {
  std::vector<Zone> zones{
      Zone{.first_cylinder = 0, .cylinders = 64, .sectors_per_track = 64},
      Zone{.first_cylinder = 0, .cylinders = 64, .sectors_per_track = 32},
  };
  return Geometry{/*heads=*/2, /*rpm=*/7200.0, /*track_pitch_nm=*/100.0,
                  std::move(zones)};
}

PhysicalAddress Geometry::locate(std::uint64_t lba) const {
  if (lba >= total_sectors_) {
    throw std::out_of_range("geometry: LBA beyond device");
  }
  // Zones are few; linear scan is fine and branch-predictable.
  std::uint32_t zi = 0;
  while (lba >= zone_first_lba_[zi + 1]) ++zi;
  const Zone& z = zones_[zi];
  const std::uint64_t in_zone = lba - zone_first_lba_[zi];
  const std::uint64_t per_cyl =
      static_cast<std::uint64_t>(heads_) * z.sectors_per_track;
  PhysicalAddress addr;
  addr.zone = zi;
  addr.cylinder = z.first_cylinder + static_cast<std::uint32_t>(in_zone / per_cyl);
  const std::uint64_t in_cyl = in_zone % per_cyl;
  addr.head = static_cast<std::uint32_t>(in_cyl / z.sectors_per_track);
  addr.sector = static_cast<std::uint32_t>(in_cyl % z.sectors_per_track);
  return addr;
}

std::uint32_t Geometry::sectors_per_track_at(std::uint64_t lba) const {
  return zones_[locate(lba).zone].sectors_per_track;
}

double Geometry::media_rate_bps(std::uint64_t lba) const {
  const double spt = sectors_per_track_at(lba);
  return spt * kSectorSize / revolution_s();
}

}  // namespace deepnote::hdd
