#include "hdd/drive.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace deepnote::hdd {
namespace {

constexpr double kInfinite = std::numeric_limits<double>::infinity();
constexpr std::uint32_t kUnitBytes = 4096;  // media scheduling granularity
constexpr std::uint32_t kUnitSectors = kUnitBytes / kSectorSize;

}  // namespace

Hdd::Hdd(HddConfig config)
    : config_(std::move(config)),
      servo_(config_.servo),
      rng_(config_.rng_seed),
      durable_(config_.geometry.total_sectors()),
      cache_overlay_(config_.geometry.total_sectors()) {}

// ---------------------------------------------------------------------------
// Servo-aware media timing.

double Hdd::expected_media_unit_s(AccessKind kind, std::uint64_t lba) const {
  const double rate = config_.geometry.media_rate_bps(lba);
  const double t_xfer = kUnitBytes / rate;
  const double p =
      servo_.attempt_success_probability(servo_state_, kind, t_xfer);
  if (p <= 0.0) return kInfinite;
  const double t_rev = config_.geometry.revolution_s();
  return t_xfer + (1.0 / p - 1.0) * t_rev;
}

std::optional<double> Hdd::sample_media_time(AccessKind kind,
                                             std::uint64_t lba,
                                             std::uint32_t sector_count,
                                             std::uint32_t* retries_out) {
  const double rate = config_.geometry.media_rate_bps(lba);
  const double t_rev = config_.geometry.revolution_s();
  const double unit_xfer = kUnitBytes / rate;
  const double p =
      servo_.attempt_success_probability(servo_state_, kind, unit_xfer);
  if (p <= 0.0) return std::nullopt;

  const std::uint64_t bytes =
      static_cast<std::uint64_t>(sector_count) * kSectorSize;
  double total = static_cast<double>(bytes) / rate;
  if (p >= 1.0) return total;

  const std::uint32_t units =
      static_cast<std::uint32_t>((sector_count + kUnitSectors - 1) /
                                 kUnitSectors);
  const double log1mp = std::log1p(-p);
  std::uint32_t total_retries = 0;
  for (std::uint32_t u = 0; u < units; ++u) {
    // Geometric number of failed attempts before success.
    double uni;
    do {
      uni = rng_.next_double();
    } while (uni <= 0.0);
    const double k_real = std::floor(std::log(uni) / log1mp);
    const auto k = static_cast<std::uint32_t>(
        std::min(k_real, static_cast<double>(config_.max_media_retries + 1)));
    if (k > config_.max_media_retries) {
      // Retry budget exhausted: the command fails after the budget burns.
      total += static_cast<double>(config_.max_media_retries) * t_rev;
      stats_.media_retries += config_.max_media_retries;
      if (retries_out) *retries_out += config_.max_media_retries;
      return std::nullopt;  // caller reports kMediaError using this signal
    }
    total += static_cast<double>(k) * t_rev;
    total_retries += k;
  }
  stats_.media_retries += total_retries;
  if (retries_out) *retries_out += total_retries;
  return total;
}

double Hdd::seek_time_s(std::uint32_t from_cyl, std::uint32_t to_cyl) const {
  if (from_cyl == to_cyl) return 0.0;
  const double dist = std::abs(static_cast<double>(from_cyl) -
                               static_cast<double>(to_cyl));
  const double frac = dist / config_.geometry.total_cylinders();
  return config_.seek_track_to_track_s +
         (config_.seek_full_stroke_s - config_.seek_track_to_track_s) *
             std::sqrt(frac);
}

double Hdd::media_availability() const {
  if (servo_state_.parked) return 0.0;
  const double lambda = servo_state_.false_trip_rate_hz;
  if (lambda <= 0.0) return 1.0;
  return 1.0 / (1.0 + lambda * servo_.config().park_resume_s);
}

// ---------------------------------------------------------------------------
// Lazy background state: cache drain, prefetch fill, shock false trips.

void Hdd::advance(sim::SimTime now) {
  if (now <= bg_cursor_) return;
  const double resume_s = servo_.config().park_resume_s;
  while (bg_cursor_ < now) {
    // Media busy (foreground op or park window): skip ahead, no accrual.
    if (media_free_at_ > bg_cursor_) {
      bg_cursor_ = sim::min(media_free_at_, now);
      continue;
    }
    // Shock-sensor false trip?
    const double lambda = servo_state_.false_trip_rate_hz;
    sim::SimTime trip = sim::SimTime::infinity();
    if (lambda > 0.0 && !servo_state_.parked) {
      trip = next_trip_;
      if (trip <= bg_cursor_) {
        // Trip fires: media parked for one resume cycle.
        media_free_at_ = bg_cursor_ + sim::Duration::from_seconds(resume_s);
        ++stats_.shock_parks;
        next_trip_ = media_free_at_ +
                     sim::Duration::from_seconds(rng_.exponential(1.0 / lambda));
        continue;
      }
    }
    const sim::SimTime seg_end = sim::min(now, trip);
    const double dt = (seg_end - bg_cursor_).seconds();
    if (dt > 0.0) {
      const bool draining = !cache_fifo_.empty();
      const bool prefetching = prefetch_active_;
      const double share = (draining && prefetching) ? 0.5 : 1.0;
      if (draining) {
        const double unit_s =
            expected_media_unit_s(AccessKind::kWrite, cache_fifo_.front().lba);
        if (std::isfinite(unit_s)) {
          drain_credit_bytes_ += dt * share * kUnitBytes / unit_s;
          drain_fully(seg_end);
        }
      }
      if (prefetching) {
        const double unit_s =
            expected_media_unit_s(AccessKind::kRead, prefetch_next_lba_);
        if (std::isfinite(unit_s)) {
          prefetch_bytes_ = std::min(
              static_cast<double>(config_.lookahead_buffer_bytes),
              prefetch_bytes_ + dt * share * kUnitBytes / unit_s);
        }
      }
    }
    bg_cursor_ = seg_end;
  }
}

void Hdd::pop_front_to_media() {
  auto& front = cache_fifo_.front();
  if (config_.retain_data) {
    durable_.write(front.lba, front.sector_count,
                   std::span<const std::byte>(front.data));
  }
  for (std::uint32_t s = 0; s < front.sector_count; ++s) {
    auto it = pending_counts_.find(front.lba + s);
    if (it != pending_counts_.end() && --it->second == 0) {
      pending_counts_.erase(it);
    }
  }
  cache_bytes_ -= front.sector_count * kSectorSize;
  cache_fifo_.pop_front();
}

void Hdd::drain_fully(sim::SimTime /*now*/) {
  while (!cache_fifo_.empty()) {
    const double bytes =
        static_cast<double>(cache_fifo_.front().sector_count) * kSectorSize;
    if (drain_credit_bytes_ < bytes) break;
    drain_credit_bytes_ -= bytes;
    pop_front_to_media();
  }
  if (cache_fifo_.empty()) drain_credit_bytes_ = 0.0;  // no banking
}

// ---------------------------------------------------------------------------
// Excitation updates.

void Hdd::set_excitation(sim::SimTime now,
                         const structure::DriveExcitation& excitation) {
  advance(now);
  const ServoState next = servo_.evaluate(excitation);
  const bool was_blocked = servo_state_.parked;
  servo_state_ = next;
  if (next.false_trip_rate_hz > 0.0) {
    next_trip_ = now + sim::Duration::from_seconds(
                           rng_.exponential(1.0 / next.false_trip_rate_hz));
  } else {
    next_trip_ = sim::SimTime::infinity();
  }
  // A drive whose heads were parked recovers shortly after the disturbance
  // ends (unpark + recalibrate); any stuck recovery state is abandoned.
  if (was_blocked && !next.parked) {
    const auto recover =
        now + sim::Duration::from_seconds(servo_.config().park_resume_s);
    media_free_at_ = sim::min(media_free_at_, recover);
    interface_free_at_ = sim::min(interface_free_at_, recover);
  }
}

void Hdd::reset(sim::SimTime now) {
  advance(now);
  constexpr double kResetRecoveryS = 0.05;
  const auto ready = now + sim::Duration::from_seconds(kResetRecoveryS);
  media_free_at_ = sim::min(media_free_at_, ready);
  interface_free_at_ = sim::min(interface_free_at_, ready);
  prefetch_active_ = false;
  prefetch_bytes_ = 0.0;
}

// ---------------------------------------------------------------------------
// Host commands.

IoResult Hdd::read(sim::SimTime now, std::uint64_t lba,
                   std::uint32_t sector_count, std::span<std::byte> out,
                   sim::SimTime deadline) {
  advance(now);
  ++stats_.reads;

  const sim::SimTime start = sim::max(now, interface_free_at_);
  const auto overhead =
      sim::Duration::from_seconds(config_.command_overhead_read_s);

  if (servo_state_.parked) {
    ++stats_.hung_commands;
    return IoResult{IoStatus::kHung, sim::SimTime::infinity(), 0};
  }

  const bool sequential =
      prefetch_active_
          ? (lba >= last_read_end_lba_ &&
             lba - last_read_end_lba_ <= config_.sequential_window_sectors)
          : (last_read_end_lba_ != 0 && lba == last_read_end_lba_);

  IoResult result;
  std::uint32_t retries = 0;
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(sector_count) * kSectorSize;

  auto hung = [&]() {
    ++stats_.hung_commands;
    return IoResult{IoStatus::kHung, sim::SimTime::infinity(), retries};
  };
  auto media_error = [&](double burn_s) {
    ++stats_.media_errors;
    const sim::SimTime done =
        sim::max(start + overhead, media_free_at_) +
        sim::Duration::from_seconds(burn_s);
    if (done > deadline) return hung();
    media_free_at_ = done;
    interface_free_at_ = done;
    return IoResult{IoStatus::kMediaError, done, retries};
  };

  if (sequential) {
    const bool was_prefetching = prefetch_active_;
    const double bytes_f = static_cast<double>(bytes);
    if (was_prefetching && prefetch_bytes_ >= bytes_f) {
      // Look-ahead hit: interface cost only.
      const sim::SimTime done = start + overhead;
      if (done > deadline) return hung();
      prefetch_bytes_ -= bytes_f;
      prefetch_next_lba_ = lba + sector_count;
      result.complete = done;
      interface_free_at_ = done;
    } else {
      // Buffer dry (or prefetch starting): block on the media for the
      // deficit.
      const double avail = was_prefetching ? prefetch_bytes_ : 0.0;
      const auto deficit_bytes =
          static_cast<std::uint64_t>(bytes_f - avail);
      const auto deficit_sectors = static_cast<std::uint32_t>(
          (deficit_bytes + kSectorSize - 1) / kSectorSize);
      auto media = sample_media_time(AccessKind::kRead, lba, deficit_sectors,
                                     &retries);
      if (!media.has_value()) {
        const double p = servo_.attempt_success_probability(
            servo_state_, AccessKind::kRead, 1e-5);
        if (p <= 0.0) return hung();
        return media_error(config_.max_media_retries *
                           config_.geometry.revolution_s());
      }
      const sim::SimTime media_begin =
          sim::max(start + overhead, media_free_at_);
      const sim::SimTime done =
          media_begin + sim::Duration::from_seconds(*media);
      if (done > deadline) return hung();
      prefetch_active_ = true;
      prefetch_bytes_ = 0.0;
      prefetch_next_lba_ = lba + sector_count;
      result.complete = done;
      media_free_at_ = done;
      interface_free_at_ = done;
    }
  } else {
    // Random read: seek + rotational latency + transfer.
    const PhysicalAddress addr = config_.geometry.locate(lba);
    const double seek = seek_time_s(head_cylinder_, addr.cylinder);
    const double rot = rng_.uniform(0.0, config_.geometry.revolution_s());
    auto media = sample_media_time(AccessKind::kRead, lba, sector_count,
                                   &retries);
    if (!media.has_value()) {
      const double p = servo_.attempt_success_probability(
          servo_state_, AccessKind::kRead, 1e-5);
      if (p <= 0.0) return hung();
      IoResult r = media_error(
          seek + rot +
          config_.max_media_retries * config_.geometry.revolution_s());
      if (r.status == IoStatus::kMediaError) {
        prefetch_active_ = false;
        prefetch_bytes_ = 0.0;
        head_cylinder_ = addr.cylinder;
      }
      return r;
    }
    const sim::SimTime media_begin =
        sim::max(start + overhead, media_free_at_);
    const sim::SimTime done =
        media_begin + sim::Duration::from_seconds(seek + rot + *media);
    if (done > deadline) return hung();
    prefetch_active_ = false;
    prefetch_bytes_ = 0.0;
    result.complete = done;
    media_free_at_ = done;
    interface_free_at_ = done;
    head_cylinder_ = addr.cylinder;
  }

  last_read_end_lba_ = lba + sector_count;
  result.status = IoStatus::kOk;
  result.media_retries = retries;
  stats_.bytes_read += bytes;

  if (!out.empty()) {
    if (out.size() != bytes) {
      throw std::invalid_argument("Hdd::read: output span size mismatch");
    }
    // Serve newest data: overlay (pending cache) wins over media.
    durable_.read(lba, sector_count, out);
    if (!pending_counts_.empty()) {
      // Coalesce overlay reads into contiguous pending runs: one overlay
      // read per run rather than per sector.
      std::uint32_t s = 0;
      while (s < sector_count) {
        if (pending_counts_.count(lba + s) == 0) {
          ++s;
          continue;
        }
        const std::uint32_t run_start = s;
        do {
          ++s;
        } while (s < sector_count && pending_counts_.count(lba + s) != 0);
        cache_overlay_.read(
            lba + run_start, s - run_start,
            out.subspan(static_cast<std::size_t>(run_start) * kSectorSize,
                        static_cast<std::size_t>(s - run_start) *
                            kSectorSize));
      }
    }
  }
  return result;
}

IoResult Hdd::write(sim::SimTime now, std::uint64_t lba,
                    std::uint32_t sector_count,
                    std::span<const std::byte> in, sim::SimTime deadline) {
  advance(now);
  ++stats_.writes;
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(sector_count) * kSectorSize;
  if (in.size() != bytes) {
    throw std::invalid_argument("Hdd::write: input span size mismatch");
  }

  const sim::SimTime start = sim::max(now, interface_free_at_);
  const auto overhead =
      sim::Duration::from_seconds(config_.command_overhead_write_s);

  std::uint32_t retries = 0;
  auto hung = [&]() {
    ++stats_.hung_commands;
    return IoResult{IoStatus::kHung, sim::SimTime::infinity(), retries};
  };

  auto insert_into_cache = [&] {
    if (config_.retain_data) {
      cache_overlay_.write(lba, sector_count, in);
      for (std::uint32_t s = 0; s < sector_count; ++s) {
        ++pending_counts_[lba + s];
      }
      cache_fifo_.push_back(PendingWrite{
          lba, sector_count, std::vector<std::byte>(in.begin(), in.end())});
    } else {
      cache_fifo_.push_back(PendingWrite{lba, sector_count, {}});
    }
    cache_bytes_ += bytes;
  };

  if (!config_.write_cache_enabled) {
    // Write-through: pay seek + rotation + media directly.
    if (servo_state_.parked) return hung();
    const PhysicalAddress addr = config_.geometry.locate(lba);
    const double seek = seek_time_s(head_cylinder_, addr.cylinder);
    const double rot = rng_.uniform(0.0, config_.geometry.revolution_s());
    auto media =
        sample_media_time(AccessKind::kWrite, lba, sector_count, &retries);
    if (!media.has_value()) {
      const double p = servo_.attempt_success_probability(
          servo_state_, AccessKind::kWrite, 1e-5);
      if (p <= 0.0) return hung();
      ++stats_.media_errors;
      const sim::SimTime done =
          sim::max(start + overhead, media_free_at_) +
          sim::Duration::from_seconds(
              seek + rot +
              config_.max_media_retries * config_.geometry.revolution_s());
      if (done > deadline) return hung();
      media_free_at_ = done;
      interface_free_at_ = done;
      head_cylinder_ = addr.cylinder;
      return IoResult{IoStatus::kMediaError, done, retries};
    }
    const sim::SimTime done =
        sim::max(start + overhead, media_free_at_) +
        sim::Duration::from_seconds(seek + rot + *media);
    if (done > deadline) return hung();
    media_free_at_ = done;
    interface_free_at_ = done;
    head_cylinder_ = addr.cylinder;
    if (config_.retain_data) durable_.write(lba, sector_count, in);
    stats_.bytes_written += bytes;
    return IoResult{IoStatus::kOk, done, retries};
  }

  if (cache_bytes_ + bytes <= config_.write_cache_bytes) {
    // Fast path: absorb into the write-back cache.
    const sim::SimTime done = start + overhead;
    if (done > deadline) return hung();
    insert_into_cache();
    interface_free_at_ = done;
    stats_.bytes_written += bytes;
    return IoResult{IoStatus::kOk, done, 0};
  }

  // Cache full: the host blocks while the foreground drains enough space.
  if (servo_state_.parked) return hung();

  // Phase 1: sample the drain cost without touching the cache.
  std::uint64_t freed = 0;
  std::size_t pops = 0;
  double drain_s = 0.0;
  for (const auto& entry : cache_fifo_) {
    if (freed >= bytes) break;
    auto media = sample_media_time(AccessKind::kWrite, entry.lba,
                                   entry.sector_count, &retries);
    if (!media.has_value()) {
      const double p = servo_.attempt_success_probability(
          servo_state_, AccessKind::kWrite, 1e-5);
      if (p <= 0.0) return hung();
      ++stats_.media_errors;
      const sim::SimTime done =
          sim::max(start + overhead, media_free_at_) +
          sim::Duration::from_seconds(
              config_.max_media_retries * config_.geometry.revolution_s());
      if (done > deadline) return hung();
      media_free_at_ = done;
      interface_free_at_ = done;
      return IoResult{IoStatus::kMediaError, done, retries};
    }
    drain_s += *media;
    freed += entry.sector_count * kSectorSize;
    ++pops;
  }
  const sim::SimTime media_begin = sim::max(start + overhead, media_free_at_);
  const sim::SimTime done = media_begin + sim::Duration::from_seconds(drain_s);
  if (done > deadline) return hung();

  // Phase 2: commit.
  for (std::size_t i = 0; i < pops; ++i) pop_front_to_media();
  media_free_at_ = done;
  interface_free_at_ = done;
  insert_into_cache();
  stats_.bytes_written += bytes;
  return IoResult{IoStatus::kOk, done, retries};
}

IoResult Hdd::flush(sim::SimTime now, sim::SimTime deadline) {
  advance(now);
  ++stats_.flushes;
  const sim::SimTime start = sim::max(now, interface_free_at_);
  const auto overhead =
      sim::Duration::from_seconds(config_.command_overhead_write_s);
  std::uint32_t retries = 0;
  auto hung = [&]() {
    ++stats_.hung_commands;
    return IoResult{IoStatus::kHung, sim::SimTime::infinity(), retries};
  };
  if (cache_fifo_.empty()) {
    const sim::SimTime done = start + overhead;
    if (done > deadline) return hung();
    interface_free_at_ = done;
    return IoResult{IoStatus::kOk, done, 0};
  }
  if (servo_state_.parked) return hung();

  // Phase 1: sample the full drain cost.
  double drain_s = 0.0;
  for (const auto& entry : cache_fifo_) {
    auto media = sample_media_time(AccessKind::kWrite, entry.lba,
                                   entry.sector_count, &retries);
    if (!media.has_value()) {
      const double p = servo_.attempt_success_probability(
          servo_state_, AccessKind::kWrite, 1e-5);
      if (p <= 0.0) return hung();
      ++stats_.media_errors;
      const sim::SimTime done =
          sim::max(start + overhead, media_free_at_) +
          sim::Duration::from_seconds(
              config_.max_media_retries * config_.geometry.revolution_s());
      if (done > deadline) return hung();
      media_free_at_ = done;
      interface_free_at_ = done;
      return IoResult{IoStatus::kMediaError, done, retries};
    }
    drain_s += *media;
  }
  const sim::SimTime media_begin = sim::max(start + overhead, media_free_at_);
  const sim::SimTime done = media_begin + sim::Duration::from_seconds(drain_s);
  if (done > deadline) return hung();

  // Phase 2: commit.
  while (!cache_fifo_.empty()) pop_front_to_media();
  drain_credit_bytes_ = 0.0;
  media_free_at_ = done;
  interface_free_at_ = done;
  return IoResult{IoStatus::kOk, done, retries};
}

void Hdd::power_cut() {
  cache_fifo_.clear();
  cache_overlay_.clear();
  pending_counts_.clear();
  cache_bytes_ = 0;
  drain_credit_bytes_ = 0.0;
  prefetch_bytes_ = 0.0;
  prefetch_active_ = false;
}

std::uint64_t Hdd::cached_bytes(sim::SimTime now) {
  advance(now);
  return cache_bytes_;
}

}  // namespace deepnote::hdd
