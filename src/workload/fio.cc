#include "workload/fio.h"

#include <vector>

namespace deepnote::workload {

FioReport FioRunner::run(sim::SimTime start, const FioJobConfig& config) {
  sim::Rng rng(config.seed);
  const std::uint32_t sectors =
      config.block_bytes / storage::kBlockSectorSize;
  const std::uint64_t span_blocks = config.span_bytes / config.block_bytes;
  const std::uint64_t first_lba =
      config.offset_bytes / storage::kBlockSectorSize;
  const std::uint64_t device_blocks =
      device_.total_sectors() / sectors;
  const std::uint64_t blocks =
      std::min<std::uint64_t>(span_blocks,
                              device_blocks - first_lba / sectors);

  const sim::SimTime window_start = start + config.ramp;
  const sim::SimTime window_end = window_start + config.duration;
  WindowMeter meter(window_start, window_end);

  std::vector<std::byte> buf(config.block_bytes, std::byte{0x5a});

  const bool is_seq = config.pattern == IoPattern::kSeqWrite ||
                      config.pattern == IoPattern::kSeqRead;
  const bool is_mixed = config.pattern == IoPattern::kRandMixed;

  std::uint64_t read_bytes = 0;
  std::uint64_t write_bytes = 0;
  sim::SimTime t = start;
  std::uint64_t cursor = 0;
  while (t < window_end) {
    const std::uint64_t block_index =
        is_seq ? (cursor++ % blocks)
               : static_cast<std::uint64_t>(rng.uniform_int(
                     0, static_cast<std::int64_t>(blocks) - 1));
    const std::uint64_t lba = first_lba + block_index * sectors;

    bool is_write = config.pattern == IoPattern::kSeqWrite ||
                    config.pattern == IoPattern::kRandWrite;
    if (is_mixed) is_write = !rng.bernoulli(config.read_mix);

    const sim::SimTime begin = t + config.submit_overhead;
    storage::BlockIo io =
        is_write ? device_.write(begin, lba, sectors, buf)
                 : device_.read(begin, lba, sectors, buf);
    if (io.ok()) {
      meter.record_ok(t, io.complete, config.block_bytes);
      if (io.complete >= window_start && io.complete <= window_end) {
        (is_write ? write_bytes : read_bytes) += config.block_bytes;
      }
    } else {
      meter.record_error(io.complete);
    }
    t = io.complete;
  }

  FioReport report;
  report.throughput_mbps = meter.throughput_mbps();
  const double secs = meter.window_seconds();
  if (secs > 0) {
    report.read_mbps = static_cast<double>(read_bytes) / 1e6 / secs;
    report.write_mbps = static_cast<double>(write_bytes) / 1e6 / secs;
  }
  report.ops_completed = meter.ops();
  report.ops_errored = meter.errors();
  if (meter.responsive()) {
    report.latency_ms = meter.latency().mean().millis();
    report.p99_ms = meter.latency().p99().millis();
  }
  return report;
}

}  // namespace deepnote::workload
