// Windowed measurement helper shared by workload runners.
//
// FIO-style: a ramp period is excluded, then ops/bytes/latencies falling
// inside the measurement window are accumulated.
#pragma once

#include "sim/stats.h"
#include "sim/time.h"

namespace deepnote::workload {

class WindowMeter {
 public:
  WindowMeter(sim::SimTime window_start, sim::SimTime window_end)
      : start_(window_start), end_(window_end) {}

  /// Record an operation that began at `begin` and completed at `end`
  /// moving `bytes`. Only ops completing inside the window count.
  void record_ok(sim::SimTime begin, sim::SimTime end, std::uint64_t bytes) {
    if (end < start_ || end > end_) return;
    ++ops_;
    bytes_ += bytes;
    latency_.add(end - begin);
  }

  void record_error(sim::SimTime end) {
    if (end < start_ || end > end_) return;
    ++errors_;
  }

  std::uint64_t ops() const { return ops_; }
  std::uint64_t errors() const { return errors_; }
  std::uint64_t bytes() const { return bytes_; }
  double window_seconds() const { return (end_ - start_).seconds(); }
  double throughput_mbps() const {
    const double s = window_seconds();
    return s > 0 ? static_cast<double>(bytes_) / 1e6 / s : 0.0;
  }
  double ops_per_second() const {
    const double s = window_seconds();
    return s > 0 ? static_cast<double>(ops_) / s : 0.0;
  }
  const sim::LatencyHistogram& latency() const { return latency_; }
  bool responsive() const { return ops_ > 0; }

 private:
  sim::SimTime start_;
  sim::SimTime end_;
  std::uint64_t ops_ = 0;
  std::uint64_t errors_ = 0;
  std::uint64_t bytes_ = 0;
  sim::LatencyHistogram latency_;
};

}  // namespace deepnote::workload
