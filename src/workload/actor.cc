#include "workload/actor.h"

namespace deepnote::workload {

sim::SimTime ActorScheduler::run_until(sim::SimTime limit) {
  sim::SimTime last = sim::SimTime::zero();
  while (true) {
    Actor* earliest = nullptr;
    for (Actor* a : actors_) {
      if (a->next_time().is_infinite()) continue;
      if (earliest == nullptr || a->next_time() < earliest->next_time()) {
        earliest = a;
      }
    }
    if (earliest == nullptr) break;
    if (earliest->next_time() > limit) break;
    last = earliest->next_time();
    earliest->step();
  }
  return last;
}

}  // namespace deepnote::workload
