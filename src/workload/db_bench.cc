#include "workload/db_bench.h"

#include <cinttypes>
#include <cstdio>
#include <memory>
#include <vector>

namespace deepnote::workload {

using storage::kvdb::Db;
using storage::kvdb::DbGetResult;
using storage::kvdb::DbResult;

void DbBench::make_key_into(std::uint64_t index, std::uint32_t key_bytes,
                            std::string& out) {
  // 20-digit zero-padded decimal, then either the last key_bytes digits
  // or 'k'-padding up to key_bytes — matching make_key() byte for byte.
  char digits[20];
  std::uint64_t v = index;
  for (int i = 19; i >= 0; --i) {
    digits[i] = static_cast<char>('0' + v % 10);
    v /= 10;
  }
  if (key_bytes < 20) {
    out.assign(digits + (20 - key_bytes), key_bytes);
  } else {
    out.assign(digits, 20);
    out.resize(key_bytes, 'k');
  }
}

void DbBench::make_value_into(std::uint64_t index, std::uint32_t value_bytes,
                              std::string& out) {
  out.resize(value_bytes);
  std::uint32_t c = static_cast<std::uint32_t>(index % 26);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<char>('a' + c);
    if (++c == 26) c = 0;
  }
}

std::string DbBench::make_key(std::uint64_t index, std::uint32_t key_bytes) {
  std::string key;
  make_key_into(index, key_bytes, key);
  return key;
}

std::string DbBench::make_value(std::uint64_t index,
                                std::uint32_t value_bytes) {
  std::string v;
  make_value_into(index, value_bytes, v);
  return v;
}

sim::SimTime DbBench::fillseq(sim::SimTime start, std::uint64_t count,
                              const DbBenchConfig& config) {
  sim::SimTime t = start;
  for (std::uint64_t i = 0; i < count; ++i) {
    make_key_into(i, config.key_bytes, key_scratch_);
    make_value_into(i, config.value_bytes, value_scratch_);
    DbResult r = db_.put(t, key_scratch_, value_scratch_);
    t = r.done;
    if (r.err == storage::Errno::kEAGAIN || db_.flush_pending()) {
      DbResult fr = db_.do_flush(t);
      t = fr.done;
      if (!fr.ok()) break;
      if (r.err == storage::Errno::kEAGAIN) --i;  // retry the stalled put
      continue;
    }
    if (!r.ok()) break;
    // Keep the filesystem daemons roughly current during the preload.
    if ((i & 0x3ff) == 0) {
      if (fs_.commit_due(t)) t = fs_.commit(t).done;
      storage::FsResult wb = fs_.writeback(t, config.writeback_chunk_bytes);
      if (wb.ok()) t = wb.done;
    }
  }
  return t;
}

DbBenchReport DbBench::readwhilewriting(sim::SimTime start,
                                        const DbBenchConfig& config) {
  const sim::SimTime window_start = start + config.ramp;
  const sim::SimTime window_end = window_start + config.duration;
  WindowMeter meter(window_start, window_end);

  sim::Rng seeder(config.seed);
  std::uint64_t next_key = config.preload_keys;
  std::uint64_t key_space = std::max<std::uint64_t>(config.preload_keys, 1);

  // Writer actor.
  LambdaActor writer(start, [&, rng = seeder.fork()](
                                sim::SimTime now) mutable -> sim::SimTime {
    if (db_.fatal()) return sim::SimTime::infinity();
    const std::uint64_t idx = next_key;
    make_key_into(idx, config.key_bytes, key_scratch_);
    make_value_into(idx, config.value_bytes, value_scratch_);
    DbResult r = db_.put(now, key_scratch_, value_scratch_);
    if (r.err == storage::Errno::kEAGAIN) {
      // Write stall: retry shortly, record nothing.
      return r.done + sim::Duration::from_millis(10);
    }
    if (r.ok()) {
      ++next_key;
      key_space = next_key;
      meter.record_ok(now, r.done,
                      config.key_bytes + config.value_bytes);
    } else {
      meter.record_error(r.done);
    }
    return r.done + config.writer_think;
  });

  // Reader actors.
  std::vector<std::unique_ptr<LambdaActor>> readers;
  for (std::uint32_t i = 0; i < config.reader_actors; ++i) {
    readers.push_back(std::make_unique<LambdaActor>(
        start, [&, rng = seeder.fork()](
                   sim::SimTime now) mutable -> sim::SimTime {
          if (db_.fatal()) return sim::SimTime::infinity();
          const auto idx = static_cast<std::uint64_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(key_space) - 1));
          make_key_into(idx, config.key_bytes, key_scratch_);
          DbGetResult r = db_.get(now, key_scratch_);
          if (r.err == storage::Errno::kEAGAIN) {
            return r.done + sim::Duration::from_millis(10);
          }
          if (r.ok()) {
            meter.record_ok(now, r.done,
                            config.key_bytes +
                                (r.found ? r.value.size() : 0));
          } else {
            meter.record_error(r.done);
          }
          return r.done;
        }));
  }

  // Background flush thread.
  LambdaActor flush_daemon(
      start, [&](sim::SimTime now) -> sim::SimTime {
        if (db_.fatal()) return sim::SimTime::infinity();
        if (db_.flush_pending()) {
          DbResult r = db_.do_flush(now);
          return sim::max(r.done, now + sim::Duration::from_millis(10));
        }
        return now + sim::Duration::from_millis(10);
      });

  // Filesystem daemons.
  LambdaActor commit_daemon(
      start, [&](sim::SimTime now) -> sim::SimTime {
        if (fs_.read_only()) return sim::SimTime::infinity();
        if (fs_.commit_due(now)) {
          storage::FsResult r = fs_.commit(now);
          return sim::max(r.done,
                          now + sim::Duration::from_millis(100));
        }
        return now + sim::Duration::from_millis(100);
      });
  LambdaActor writeback_daemon(
      start, [&](sim::SimTime now) -> sim::SimTime {
        if (fs_.read_only()) return sim::SimTime::infinity();
        if (fs_.dirty_bytes() == 0) {
          return now + config.writeback_interval;
        }
        storage::FsResult r =
            fs_.writeback(now, config.writeback_chunk_bytes);
        return sim::max(r.done, now + config.writeback_interval);
      });

  ActorScheduler sched;
  sched.add(writer);
  for (auto& r : readers) sched.add(*r);
  sched.add(flush_daemon);
  sched.add(commit_daemon);
  sched.add(writeback_daemon);
  const sim::SimTime last = sched.run_until(window_end);

  DbBenchReport report;
  report.throughput_mbps = meter.throughput_mbps();
  report.ops_per_second = meter.ops_per_second();
  report.ops = meter.ops();
  report.errors = meter.errors();
  report.db_fatal = db_.fatal();
  report.fatal_message = db_.fatal_message();
  report.fatal_time = db_.fatal_time();
  report.end_time = sim::max(last, window_end);
  return report;
}


namespace {

/// Shared scaffolding for the single-actor benchmark loops: runs `op`
/// (returning its completion time, recording into the meter itself) with
/// the fs daemons alongside.
DbBenchReport run_single_actor(
    storage::ExtFs& fs, Db& db, sim::SimTime start,
    const DbBenchConfig& config,
    const std::function<sim::SimTime(sim::SimTime, WindowMeter&)>& op) {
  const sim::SimTime window_start = start + config.ramp;
  const sim::SimTime window_end = window_start + config.duration;
  WindowMeter meter(window_start, window_end);

  LambdaActor worker(start, [&](sim::SimTime now) -> sim::SimTime {
    if (db.fatal()) return sim::SimTime::infinity();
    return op(now, meter);
  });
  LambdaActor flush_daemon(start, [&](sim::SimTime now) -> sim::SimTime {
    if (db.fatal()) return sim::SimTime::infinity();
    if (db.flush_pending()) {
      DbResult r = db.do_flush(now);
      return sim::max(r.done, now + sim::Duration::from_millis(10));
    }
    return now + sim::Duration::from_millis(10);
  });
  LambdaActor commit_daemon(start, [&](sim::SimTime now) -> sim::SimTime {
    if (fs.read_only()) return sim::SimTime::infinity();
    if (fs.commit_due(now)) {
      storage::FsResult r = fs.commit(now);
      return sim::max(r.done, now + sim::Duration::from_millis(100));
    }
    return now + sim::Duration::from_millis(100);
  });
  LambdaActor writeback_daemon(start, [&](sim::SimTime now) -> sim::SimTime {
    if (fs.read_only() || fs.dirty_bytes() == 0) {
      return now + config.writeback_interval;
    }
    storage::FsResult r = fs.writeback(now, config.writeback_chunk_bytes);
    return sim::max(r.done, now + config.writeback_interval);
  });

  ActorScheduler sched;
  sched.add(worker);
  sched.add(flush_daemon);
  sched.add(commit_daemon);
  sched.add(writeback_daemon);
  const sim::SimTime last = sched.run_until(window_end);

  DbBenchReport report;
  report.throughput_mbps = meter.throughput_mbps();
  report.ops_per_second = meter.ops_per_second();
  report.ops = meter.ops();
  report.errors = meter.errors();
  report.db_fatal = db.fatal();
  report.fatal_message = db.fatal_message();
  report.fatal_time = db.fatal_time();
  report.end_time = sim::max(last, window_end);
  return report;
}

}  // namespace

DbBenchReport DbBench::readrandom(sim::SimTime start,
                                  const DbBenchConfig& config) {
  sim::Rng rng(config.seed ^ 0x0dd0);
  const std::uint64_t space = std::max<std::uint64_t>(config.preload_keys, 1);
  return run_single_actor(
      fs_, db_, start, config,
      [&, rng](sim::SimTime now, WindowMeter& meter) mutable -> sim::SimTime {
        const auto idx = static_cast<std::uint64_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(space) - 1));
        make_key_into(idx, config.key_bytes, key_scratch_);
        DbGetResult r = db_.get(now, key_scratch_);
        if (r.err == storage::Errno::kEAGAIN) {
          return r.done + sim::Duration::from_millis(10);
        }
        if (r.ok()) {
          meter.record_ok(now, r.done,
                          config.key_bytes + (r.found ? r.value.size() : 0));
        } else {
          meter.record_error(r.done);
        }
        return r.done;
      });
}

DbBenchReport DbBench::fillrandom(sim::SimTime start,
                                  const DbBenchConfig& config) {
  sim::Rng rng(config.seed ^ 0xf111);
  const std::uint64_t space =
      std::max<std::uint64_t>(config.preload_keys, 1) * 4;
  return run_single_actor(
      fs_, db_, start, config,
      [&, rng](sim::SimTime now, WindowMeter& meter) mutable -> sim::SimTime {
        const auto idx = static_cast<std::uint64_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(space) - 1));
        make_key_into(idx, config.key_bytes, key_scratch_);
        make_value_into(idx, config.value_bytes, value_scratch_);
        DbResult r = db_.put(now, key_scratch_, value_scratch_);
        if (r.err == storage::Errno::kEAGAIN) {
          return r.done + sim::Duration::from_millis(10);
        }
        if (r.ok()) {
          meter.record_ok(now, r.done,
                          config.key_bytes + config.value_bytes);
        } else {
          meter.record_error(r.done);
        }
        return r.done + config.writer_think;
      });
}

DbBenchReport DbBench::overwrite(sim::SimTime start,
                                 const DbBenchConfig& config) {
  DbBenchConfig cfg = config;
  // Overwrite == fillrandom constrained to the existing key space.
  sim::Rng rng(config.seed ^ 0x0ee0);
  const std::uint64_t space = std::max<std::uint64_t>(config.preload_keys, 1);
  return run_single_actor(
      fs_, db_, start, cfg,
      [&, rng](sim::SimTime now, WindowMeter& meter) mutable -> sim::SimTime {
        const auto idx = static_cast<std::uint64_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(space) - 1));
        make_key_into(idx, config.key_bytes, key_scratch_);
        make_value_into(idx + 1, config.value_bytes, value_scratch_);
        DbResult r = db_.put(now, key_scratch_, value_scratch_);
        if (r.err == storage::Errno::kEAGAIN) {
          return r.done + sim::Duration::from_millis(10);
        }
        if (r.ok()) {
          meter.record_ok(now, r.done,
                          config.key_bytes + config.value_bytes);
        } else {
          meter.record_error(r.done);
        }
        return r.done + config.writer_think;
      });
}

DbBenchReport DbBench::seekrandom(sim::SimTime start,
                                  const DbBenchConfig& config,
                                  std::uint32_t nexts_per_seek) {
  sim::Rng rng(config.seed ^ 0x5eec);
  const std::uint64_t space = std::max<std::uint64_t>(config.preload_keys, 1);
  return run_single_actor(
      fs_, db_, start, config,
      [&, rng](sim::SimTime now, WindowMeter& meter) mutable -> sim::SimTime {
        const auto idx = static_cast<std::uint64_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(space) - 1));
        std::uint64_t bytes = 0;
        std::uint32_t visited = 0;
        make_key_into(idx, config.key_bytes, key_scratch_);
        auto r = db_.scan(now, key_scratch_, "",
                          [&](std::string_view key, std::string_view value) {
                            bytes += key.size() + value.size();
                            return ++visited < nexts_per_seek;
                          });
        if (r.err == storage::Errno::kEAGAIN) {
          return r.done + sim::Duration::from_millis(10);
        }
        if (r.ok()) {
          meter.record_ok(now, r.done, bytes);
        } else {
          meter.record_error(r.done);
        }
        return r.done;
      });
}

}  // namespace deepnote::workload
