// Cooperative virtual-time actors.
//
// The storage stack is written in a synchronous virtual-time style: every
// operation takes `now` and returns its completion time. Concurrency
// (a FIO writer + the filesystem commit daemon + a writeback thread, or
// db_bench's reader and writer threads) is modelled with actors: each
// actor exposes the time it is next ready, and a scheduler repeatedly
// runs the earliest-ready actor for one blocking operation. This keeps
// global execution ordered by time while the per-actor logic stays
// straight-line code.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "sim/time.h"

namespace deepnote::workload {

class Actor {
 public:
  virtual ~Actor() = default;
  /// Next time this actor can run; SimTime::infinity() when finished.
  virtual sim::SimTime next_time() const = 0;
  /// Execute one blocking operation starting at next_time().
  virtual void step() = 0;
};

/// Actor from a lambda: fn(now) performs one operation and returns the
/// next ready time (infinity to finish).
class LambdaActor final : public Actor {
 public:
  LambdaActor(sim::SimTime first,
              std::function<sim::SimTime(sim::SimTime)> fn)
      : next_(first), fn_(std::move(fn)) {}

  sim::SimTime next_time() const override { return next_; }
  void step() override { next_ = fn_(next_); }

 private:
  sim::SimTime next_;
  std::function<sim::SimTime(sim::SimTime)> fn_;
};

/// Runs actors in global time order until every actor is finished or the
/// next-ready time passes `limit`.
class ActorScheduler {
 public:
  void add(Actor& actor) { actors_.push_back(&actor); }

  /// Returns the time of the last executed step (or `limit`).
  sim::SimTime run_until(sim::SimTime limit);

 private:
  std::vector<Actor*> actors_;
};

}  // namespace deepnote::workload
