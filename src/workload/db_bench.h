// db_bench-like workloads for the LSM key-value store.
//
// Implements the two workloads the paper uses:
//  * fillseq           — sequential preload (setup phase)
//  * readwhilewriting  — one writer actor plus reader actors, the
//                        standard RocksDB benchmark quoted in Table 2.
//
// The runner interleaves the db actors with the filesystem's commit and
// writeback daemons through the actor scheduler, so background I/O (and
// its failures under attack) happens at the right simulated times.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "sim/rng.h"
#include "storage/extfs.h"
#include "storage/kvdb/db.h"
#include "workload/actor.h"
#include "workload/meter.h"

namespace deepnote::workload {

struct DbBenchConfig {
  std::uint32_t key_bytes = 16;
  std::uint32_t value_bytes = 64;
  std::uint32_t reader_actors = 1;
  /// Pause between writer ops beyond the store's own latency (rate
  /// limiting); zero = write as fast as the store allows.
  sim::Duration writer_think = sim::Duration::zero();
  sim::Duration ramp = sim::Duration::from_seconds(10.0);
  sim::Duration duration = sim::Duration::from_seconds(30.0);
  /// Keys preloaded before the measured phase.
  std::uint64_t preload_keys = 100000;
  /// Filesystem writeback daemon cadence and chunk.
  sim::Duration writeback_interval = sim::Duration::from_millis(100);
  std::uint64_t writeback_chunk_bytes = 8ull << 20;
  std::uint64_t seed = 0xdbbe;
};

struct DbBenchReport {
  double throughput_mbps = 0.0;
  double ops_per_second = 0.0;
  std::uint64_t ops = 0;
  std::uint64_t errors = 0;
  bool db_fatal = false;
  std::string fatal_message;
  sim::SimTime fatal_time = sim::SimTime::zero();
  sim::SimTime end_time = sim::SimTime::zero();
};

class DbBench {
 public:
  DbBench(storage::ExtFs& fs, storage::kvdb::Db& db) : fs_(fs), db_(db) {}

  /// Sequentially load `count` keys starting at `start`. Returns the
  /// completion time (or the fatal time on failure).
  sim::SimTime fillseq(sim::SimTime start, std::uint64_t count,
                       const DbBenchConfig& config);

  /// The paper's Table 2 workload.
  DbBenchReport readwhilewriting(sim::SimTime start,
                                 const DbBenchConfig& config);

  /// Uniform-random point lookups over the preloaded key space.
  DbBenchReport readrandom(sim::SimTime start, const DbBenchConfig& config);

  /// Random-key inserts (keys drawn uniformly from a space 4x the
  /// preload count, so a mix of fresh inserts and overwrites).
  DbBenchReport fillrandom(sim::SimTime start, const DbBenchConfig& config);

  /// Overwrites of existing keys (uniform over the preload space).
  DbBenchReport overwrite(sim::SimTime start, const DbBenchConfig& config);

  /// Random seeks: position a range scan at a random key and read a
  /// short run of entries (db_bench's seekrandom with seek_nexts).
  DbBenchReport seekrandom(sim::SimTime start, const DbBenchConfig& config,
                           std::uint32_t nexts_per_seek = 10);

  static std::string make_key(std::uint64_t index, std::uint32_t key_bytes);
  static std::string make_value(std::uint64_t index,
                                std::uint32_t value_bytes);

  /// In-place variants for the hot loops: format into `out` (reusing its
  /// capacity) instead of returning a fresh string. Byte-identical to the
  /// returning forms.
  static void make_key_into(std::uint64_t index, std::uint32_t key_bytes,
                            std::string& out);
  static void make_value_into(std::uint64_t index, std::uint32_t value_bytes,
                              std::string& out);

 private:
  storage::ExtFs& fs_;
  storage::kvdb::Db& db_;
  // Per-op scratch for key/value formatting. The workload actors run
  // strictly sequentially (virtual-time scheduler), and the store copies
  // key/value bytes before returning, so one scratch pair is safe.
  std::string key_scratch_;
  std::string value_scratch_;
};

}  // namespace deepnote::workload
