// FIO-like block workload runner.
//
// Reproduces the paper's measurement methodology: sequential read and
// sequential write jobs at 4 KiB access granularity against the block
// device, with a ramp period excluded from the reported numbers. Reports
// throughput in MB/s and mean completion latency in ms, with "-" (no
// value) when no operation completed in the window — exactly how Table 1
// reports an unresponsive drive.
#pragma once

#include <cstdint>
#include <optional>

#include "sim/rng.h"
#include "storage/block_device.h"
#include "workload/meter.h"

namespace deepnote::workload {

enum class IoPattern {
  kSeqRead,
  kSeqWrite,
  kRandRead,
  kRandWrite,
  /// Random mixed read/write (fio's rwmixread): see `read_mix`.
  kRandMixed,
};

struct FioJobConfig {
  IoPattern pattern = IoPattern::kSeqWrite;
  std::uint32_t block_bytes = 4096;
  /// Region of the device the job touches.
  std::uint64_t offset_bytes = 0;
  std::uint64_t span_bytes = 1ull << 30;
  /// Fraction of reads for kRandMixed (fio --rwmixread, default 70%).
  double read_mix = 0.7;
  /// Per-op host-side submission cost (syscall + block layer), calibrated
  /// with the drive command overheads against the paper's baselines.
  sim::Duration submit_overhead = sim::Duration::from_micros(100);
  sim::Duration ramp = sim::Duration::from_seconds(5.0);
  sim::Duration duration = sim::Duration::from_seconds(30.0);
  std::uint64_t seed = 0xf10;
};

struct FioReport {
  double throughput_mbps = 0.0;
  /// Split by direction (nonzero only for mixed jobs).
  double read_mbps = 0.0;
  double write_mbps = 0.0;
  /// Mean completion latency, absent when no op completed ("-").
  std::optional<double> latency_ms;
  std::uint64_t ops_completed = 0;
  std::uint64_t ops_errored = 0;
  /// p99 latency (ms) when available.
  std::optional<double> p99_ms;
};

class FioRunner {
 public:
  explicit FioRunner(storage::BlockDevice& device) : device_(device) {}

  /// Run one job starting at `start`; returns at ramp+duration.
  FioReport run(sim::SimTime start, const FioJobConfig& config);

 private:
  storage::BlockDevice& device_;
};

}  // namespace deepnote::workload
