#include "structure/mount.h"

#include <utility>

namespace deepnote::structure {

Mount::Mount(MountSpec spec) : spec_(std::move(spec)), bank_(spec_.modes) {}

double Mount::coupling_db(double frequency_hz) const {
  double g = spec_.broadband_coupling_db;
  if (!bank_.empty()) {
    const double modal = bank_.response_db(frequency_hz);
    // Modal amplification only adds on top of broadband coupling when the
    // response is positive; a mount mode does not *isolate* off-resonance
    // beyond its broadband figure.
    if (modal > 0.0) g += modal;
  }
  return g;
}

}  // namespace deepnote::structure
