// The assembled structural transmission chain:
//
//   exterior SPL at wall  -> [enclosure wall TL] -> interior field
//                         -> [mount coupling]    -> excitation at drive
//
// plus an optional insertion-loss hook used by defenses (absorbing liner,
// vibration dampener) to attenuate the chain frequency-dependently.
#pragma once

#include <functional>

#include "acoustics/signal.h"
#include "acoustics/units.h"
#include "structure/enclosure.h"
#include "structure/mount.h"

namespace deepnote::structure {

/// Excitation delivered to the drive chassis: a narrowband pressure.
struct DriveExcitation {
  double frequency_hz = 0.0;
  double pressure_pa = 0.0;  ///< RMS equivalent pressure at the drive
  bool active = false;
};

class StructuralChain {
 public:
  StructuralChain(Enclosure enclosure, Mount mount);

  /// Effective SPL (dB re 1 uPa) exciting the drive for a given exterior
  /// SPL at the given frequency.
  double drive_spl_db(double exterior_spl_db, double frequency_hz) const;

  /// Full conversion from an incident tone to drive excitation.
  DriveExcitation excite(const acoustics::ToneState& incident) const;

  /// Install an additional frequency-dependent insertion loss (dB, >= 0
  /// attenuates). Used by defense models. Passing nullptr removes it.
  void set_insertion_loss(std::function<double(double frequency_hz)> loss_db);

  const Enclosure& enclosure() const { return enclosure_; }
  const Mount& mount() const { return mount_; }

 private:
  Enclosure enclosure_;
  Mount mount_;
  std::function<double(double)> insertion_loss_db_;
};

}  // namespace deepnote::structure
