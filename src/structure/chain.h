// The assembled structural transmission chain:
//
//   exterior SPL at wall  -> [enclosure wall TL] -> interior field
//                         -> [mount coupling]    -> excitation at drive
//
// plus an optional insertion-loss hook used by defenses (absorbing liner,
// vibration dampener) to attenuate the chain frequency-dependently.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "acoustics/signal.h"
#include "acoustics/units.h"
#include "structure/enclosure.h"
#include "structure/mount.h"

namespace deepnote::structure {

/// Excitation delivered to the drive chassis: a narrowband pressure.
struct DriveExcitation {
  double frequency_hz = 0.0;
  double pressure_pa = 0.0;  ///< RMS equivalent pressure at the drive
  bool active = false;
};

class StructuralChain {
 public:
  StructuralChain(Enclosure enclosure, Mount mount);

  /// Effective SPL (dB re 1 uPa) exciting the drive for a given exterior
  /// SPL at the given frequency.
  double drive_spl_db(double exterior_spl_db, double frequency_hz) const;

  /// The frequency-dependent part of drive_spl_db — enclosure wall TL,
  /// mount coupling and any insertion loss — in dB relative to the
  /// exterior level (the chain is linear in level). Memoized: the modal
  /// resonator banks dominate sweep inner loops that revisit tones.
  double transfer_db(double frequency_hz) const;

  /// Bumped whenever the transfer function changes (set_insertion_loss);
  /// callers keying their own caches on chain output (see
  /// core::Testbed) compare this to know when to invalidate.
  std::uint64_t transfer_generation() const { return generation_; }

  /// Drop the transfer memo (next evaluations are cold). Benchmark
  /// support only; the cache is otherwise managed internally.
  void clear_transfer_cache() const { transfer_cache_.clear(); }

  /// Full conversion from an incident tone to drive excitation.
  DriveExcitation excite(const acoustics::ToneState& incident) const;

  /// Install an additional frequency-dependent insertion loss (dB, >= 0
  /// attenuates). Used by defense models. Passing nullptr removes it.
  void set_insertion_loss(std::function<double(double frequency_hz)> loss_db);

  const Enclosure& enclosure() const { return enclosure_; }
  const Mount& mount() const { return mount_; }

 private:
  // Flat memo for transfer_db, linear-probed (sweeps touch dozens of
  // distinct tones, not thousands); cleared when full or on transfer
  // changes. NOT thread-safe: a chain (like the Testbed owning it) must
  // stay on one thread — parallel trials each build their own.
  static constexpr std::size_t kTransferCacheCap = 512;

  Enclosure enclosure_;
  Mount mount_;
  std::function<double(double)> insertion_loss_db_;
  mutable std::vector<std::pair<double, double>> transfer_cache_;
  std::uint64_t generation_ = 0;
};

}  // namespace deepnote::structure
