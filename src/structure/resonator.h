// Damped modal resonators.
//
// Everything mechanical in the attack chain — enclosure panels, the
// storage-tower rack, the drive's head-stack assembly — is modelled as a
// bank of second-order damped modes. A mode with natural frequency f0,
// quality factor Q and peak gain g responds to excitation at f with the
// standard magnitude
//
//   |H(f)| = g_norm / sqrt((1 - (f/f0)^2)^2 + (f / (f0 Q))^2)
//
// normalised so the response at resonance equals g (the configured peak).
#pragma once

#include <string>
#include <vector>

namespace deepnote::structure {

struct Mode {
  double f0_hz = 0.0;     ///< natural frequency
  double q = 5.0;         ///< quality factor (>= 0.5)
  double peak_gain_db = 0.0;  ///< gain at resonance, dB
  std::string label;      ///< for diagnostics ("panel bending", ...)
};

/// Magnitude response of a single mode at frequency f, in dB.
/// At f = f0 this returns exactly mode.peak_gain_db; far below resonance it
/// approaches peak_gain_db - 20*log10(Q) (static compliance); far above it
/// rolls off at 12 dB/octave.
double mode_response_db(const Mode& mode, double frequency_hz);

/// A bank of modes. The bank response is the linear (power) sum of the
/// individual modal responses — overlapping modes reinforce.
class ResonatorBank {
 public:
  ResonatorBank() = default;
  explicit ResonatorBank(std::vector<Mode> modes);

  void add_mode(Mode mode);
  const std::vector<Mode>& modes() const { return modes_; }
  bool empty() const { return modes_.empty(); }

  /// Bank magnitude response at f, in dB. Returns -infinity-ish (-400 dB)
  /// for an empty bank.
  double response_db(double frequency_hz) const;

  /// Frequency of the strongest response over [lo, hi], found by dense
  /// scan + local refinement. Useful for attacker recon and tests.
  double peak_frequency_hz(double lo_hz, double hi_hz,
                           int scan_points = 2048) const;

 private:
  std::vector<Mode> modes_;
};

}  // namespace deepnote::structure
