#include "structure/enclosure.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace deepnote::structure {

WallMaterial WallMaterial::hard_plastic() {
  return WallMaterial{.name = "hard plastic",
                      .surface_density_kg_m2 = 4.8,
                      .loss_factor = 0.08};
}

WallMaterial WallMaterial::aluminum() {
  return WallMaterial{.name = "aluminum",
                      .surface_density_kg_m2 = 8.1,
                      .loss_factor = 0.02};
}

WallMaterial WallMaterial::steel() {
  return WallMaterial{.name = "steel",
                      .surface_density_kg_m2 = 78.0,
                      .loss_factor = 0.01};
}

Enclosure::Enclosure(EnclosureSpec spec)
    : spec_(std::move(spec)), panel_bank_(spec_.panel_modes) {}

double Enclosure::mass_law_db(double frequency_hz) const {
  // Mass law: TL = TL_ref + 20 log10(m / m_ref) + 20 log10(f / f_ref),
  // floored at 0 (a wall never amplifies broadband).
  constexpr double kRefFrequencyHz = 1000.0;
  constexpr double kRefSurfaceDensity = 10.0;  // kg/m^2
  const double tl =
      spec_.mass_law_reference_db +
      20.0 * std::log10(spec_.material.surface_density_kg_m2 /
                        kRefSurfaceDensity) +
      20.0 * std::log10(std::max(frequency_hz, 1.0) / kRefFrequencyHz);
  return std::max(tl, 0.0);
}

double Enclosure::transmission_loss_db(double frequency_hz) const {
  double tl = mass_law_db(frequency_hz);
  if (!panel_bank_.empty()) {
    // A panel mode leaks energy through the wall: subtract the modal
    // response (which peaks at the mode's configured gain). Off-resonance
    // tails never *add* isolation.
    const double leak = panel_bank_.response_db(frequency_hz);
    if (leak > 0.0) tl -= leak;
  }
  return tl - spec_.interior_coupling_db;
}

double Enclosure::interior_spl_db(double exterior_spl_db,
                                  double frequency_hz) const {
  return exterior_spl_db - transmission_loss_db(frequency_hz);
}

}  // namespace deepnote::structure
