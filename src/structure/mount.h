// Drive mounting model: how enclosure vibration couples into the drive.
//
// Scenario 1 sits the drive on the container floor; Scenarios 2/3 hold it
// in a Supermicro-style 5-bay storage tower ("simulating a data-center
// rack"). The mounting structure has its own resonances which can amplify
// the excitation reaching the drive — the paper observes scenario-to-
// scenario variance for exactly this reason.
#pragma once

#include <string>
#include <vector>

#include "structure/resonator.h"

namespace deepnote::structure {

struct MountSpec {
  std::string name;
  /// Broadband coupling from interior field to drive chassis, dB
  /// (0 = unity; negative = isolation).
  double broadband_coupling_db = 0.0;
  /// Structural modes of the mount (rack rails, tower frame...).
  std::vector<Mode> modes;
};

class Mount {
 public:
  explicit Mount(MountSpec spec);

  /// Coupling gain at f in dB: broadband coupling plus modal amplification.
  double coupling_db(double frequency_hz) const;

  const MountSpec& spec() const { return spec_; }

 private:
  MountSpec spec_;
  ResonatorBank bank_;
};

}  // namespace deepnote::structure
