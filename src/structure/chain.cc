#include "structure/chain.h"

#include <utility>

namespace deepnote::structure {

StructuralChain::StructuralChain(Enclosure enclosure, Mount mount)
    : enclosure_(std::move(enclosure)), mount_(std::move(mount)) {}

double StructuralChain::drive_spl_db(double exterior_spl_db,
                                     double frequency_hz) const {
  double spl = enclosure_.interior_spl_db(exterior_spl_db, frequency_hz);
  spl += mount_.coupling_db(frequency_hz);
  if (insertion_loss_db_) spl -= insertion_loss_db_(frequency_hz);
  return spl;
}

DriveExcitation StructuralChain::excite(
    const acoustics::ToneState& incident) const {
  if (!incident.active) return DriveExcitation{};
  const double spl =
      drive_spl_db(incident.level_db, incident.frequency_hz);
  return DriveExcitation{
      .frequency_hz = incident.frequency_hz,
      .pressure_pa = acoustics::spl_water_db_to_pa(spl),
      .active = true,
  };
}

void StructuralChain::set_insertion_loss(
    std::function<double(double)> loss_db) {
  insertion_loss_db_ = std::move(loss_db);
}

}  // namespace deepnote::structure
