#include "structure/chain.h"

#include <utility>

namespace deepnote::structure {

StructuralChain::StructuralChain(Enclosure enclosure, Mount mount)
    : enclosure_(std::move(enclosure)), mount_(std::move(mount)) {
  transfer_cache_.reserve(64);
}

double StructuralChain::transfer_db(double frequency_hz) const {
  for (const auto& [f, t] : transfer_cache_) {
    if (f == frequency_hz) return t;
  }
  // interior_spl_db is exterior - TL(f): evaluate the frequency part
  // against a 0 dB exterior level once and reuse it for every level.
  double transfer = enclosure_.interior_spl_db(0.0, frequency_hz);
  transfer += mount_.coupling_db(frequency_hz);
  if (insertion_loss_db_) transfer -= insertion_loss_db_(frequency_hz);
  if (transfer_cache_.size() >= kTransferCacheCap) transfer_cache_.clear();
  transfer_cache_.emplace_back(frequency_hz, transfer);
  return transfer;
}

double StructuralChain::drive_spl_db(double exterior_spl_db,
                                     double frequency_hz) const {
  return exterior_spl_db + transfer_db(frequency_hz);
}

DriveExcitation StructuralChain::excite(
    const acoustics::ToneState& incident) const {
  if (!incident.active) return DriveExcitation{};
  const double spl =
      drive_spl_db(incident.level_db, incident.frequency_hz);
  return DriveExcitation{
      .frequency_hz = incident.frequency_hz,
      .pressure_pa = acoustics::spl_water_db_to_pa(spl),
      .active = true,
  };
}

void StructuralChain::set_insertion_loss(
    std::function<double(double)> loss_db) {
  insertion_loss_db_ = std::move(loss_db);
  transfer_cache_.clear();
  ++generation_;
}

}  // namespace deepnote::structure
