#include "structure/resonator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace deepnote::structure {

double mode_response_db(const Mode& mode, double frequency_hz) {
  if (mode.f0_hz <= 0.0) {
    throw std::invalid_argument("mode_response_db: f0 must be positive");
  }
  const double q = std::max(mode.q, 0.5);
  const double r = frequency_hz / mode.f0_hz;
  const double denom =
      std::sqrt((1.0 - r * r) * (1.0 - r * r) + (r / q) * (r / q));
  // At resonance (r = 1) denom = 1/Q; normalise so the peak equals
  // peak_gain_db exactly.
  const double mag = (1.0 / q) / std::max(denom, 1e-12);
  return mode.peak_gain_db + 20.0 * std::log10(mag);
}

ResonatorBank::ResonatorBank(std::vector<Mode> modes)
    : modes_(std::move(modes)) {}

void ResonatorBank::add_mode(Mode mode) { modes_.push_back(std::move(mode)); }

double ResonatorBank::response_db(double frequency_hz) const {
  if (modes_.empty()) return -400.0;
  double power = 0.0;
  for (const auto& m : modes_) {
    const double db = mode_response_db(m, frequency_hz);
    power += std::pow(10.0, db / 10.0);
  }
  return 10.0 * std::log10(power);
}

double ResonatorBank::peak_frequency_hz(double lo_hz, double hi_hz,
                                        int scan_points) const {
  if (modes_.empty() || lo_hz <= 0 || hi_hz <= lo_hz) return lo_hz;
  double best_f = lo_hz;
  double best_db = response_db(lo_hz);
  const double ratio = std::pow(hi_hz / lo_hz, 1.0 / (scan_points - 1));
  double f = lo_hz;
  for (int i = 0; i < scan_points; ++i, f *= ratio) {
    const double db = response_db(f);
    if (db > best_db) {
      best_db = db;
      best_f = f;
    }
  }
  // Local refinement around the best scan point.
  double lo = best_f / ratio;
  double hi = best_f * ratio;
  for (int i = 0; i < 60; ++i) {
    const double m1 = lo + (hi - lo) / 3.0;
    const double m2 = hi - (hi - lo) / 3.0;
    if (response_db(m1) < response_db(m2)) {
      lo = m1;
    } else {
      hi = m2;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace deepnote::structure
