// Enclosure (container) wall model.
//
// The submerged container separates the water path from the HDD. Its wall
// attenuates incident acoustic pressure broadly following the mass law
// (transmission loss grows ~6 dB/octave with frequency and with surface
// density), but panel bending resonances punch localised holes in that
// isolation — at a panel mode the wall re-radiates efficiently and the
// interior field can even be amplified. This combination is what makes the
// attack band-limited and container-material-dependent (paper Section 4.1:
// plastic vs aluminum scenarios behave differently).
#pragma once

#include <string>
#include <vector>

#include "structure/resonator.h"

namespace deepnote::structure {

struct WallMaterial {
  std::string name;
  double surface_density_kg_m2 = 5.0;  ///< wall mass per unit area
  double loss_factor = 0.05;           ///< structural damping (eta)

  static WallMaterial hard_plastic();  ///< HDPE/polycarbonate tote, ~5 mm
  static WallMaterial aluminum();      ///< aluminum box, ~3 mm
  static WallMaterial steel();         ///< data-center pressure vessel wall
};

struct EnclosureSpec {
  WallMaterial material;
  /// Broadband insertion loss at the mass-law reference frequency (1 kHz)
  /// for a wall of 10 kg/m^2; scaled by surface density and frequency.
  double mass_law_reference_db = 20.0;
  /// Panel bending modes (frequency, Q, peak gain relative to mass law).
  std::vector<Mode> panel_modes;
  /// Interior gas: the paper notes data centers are nitrogen filled; the
  /// interior medium changes coupling into the rack by a fixed offset.
  double interior_coupling_db = 0.0;
};

class Enclosure {
 public:
  explicit Enclosure(EnclosureSpec spec);

  /// Net wall attenuation at f in dB (>= 0 means loss). Mass-law loss
  /// minus panel-resonance leakage; clamped so resonances can at most
  /// amplify by the configured mode peak gains.
  double transmission_loss_db(double frequency_hz) const;

  /// Interior SPL given exterior incident SPL.
  double interior_spl_db(double exterior_spl_db, double frequency_hz) const;

  const EnclosureSpec& spec() const { return spec_; }

 private:
  double mass_law_db(double frequency_hz) const;

  EnclosureSpec spec_;
  ResonatorBank panel_bank_;
};

}  // namespace deepnote::structure
