// The overload-recovery experiment: metastable failure and the levers
// that prevent it.
//
// A two-pod acoustic attack pushes a closed-loop serving cluster past
// saturation. While the attack lasts, that is ordinary overload; the
// interesting question is what happens when it STOPS. With naive retry
// behavior — fixed un-jittered backoff, unlimited retries, and a server
// that wastes device time on requests whose deadline already passed —
// the retry load alone can hold the cluster above capacity, so goodput
// stays collapsed long after the trigger is gone: a metastable failure
// (Bronson et al.; Huang et al., PAPERS.md). With governance — capped
// exponential backoff with full per-client jitter, a cluster-wide retry
// budget, and expired-request dropping — the same population drains in
// seconds.
//
// The grid sweeps retry policy x circuit breakers x attack duration,
// measuring goodput inside the attack window, after it, and the time
// from attack-off to the first healthy SLO window. The attack itself is
// injected through the chaos schedule (scripted pod pulses lowered onto
// the engine's epoch barriers), so the golden table also pins the chaos
// path end to end.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/balancer.h"
#include "cluster/engine.h"
#include "cluster/node.h"
#include "cluster/resilience/retry.h"
#include "cluster/traffic.h"
#include "sim/table.h"

namespace deepnote::cluster {

/// The two retry disciplines the grid contrasts.
enum class OverloadPolicy : std::uint8_t {
  kNaive,     ///< fixed 50 ms backoff, no jitter, unlimited retries,
              ///< expired requests still burn device time
  kGoverned,  ///< capped exponential + full jitter, bounded retries,
              ///< cluster-wide retry budget, expired requests dropped
};

const char* overload_policy_name(OverloadPolicy policy);

struct OverloadExperimentConfig {
  core::ScenarioId scenario = core::ScenarioId::kPlasticTower;
  ClusterTopology topology;  ///< pods x bays_per_pod (default 3 x 5)
  PlacementPolicy placement = PlacementPolicy::kCrossPod;
  std::size_t replication = 3;

  std::vector<OverloadPolicy> policies = {OverloadPolicy::kNaive,
                                          OverloadPolicy::kGoverned};
  std::vector<bool> breaker_settings = {false, true};
  /// Attack pulse lengths swept (absolute, not scaled: the point of the
  /// short pulse is that naive retries stay collapsed anyway).
  std::vector<sim::Duration> attack_durations = {
      sim::Duration::from_seconds(5.0), sim::Duration::from_seconds(20.0)};

  /// Pods insonified simultaneously; with cross-pod R=3 and two of three
  /// pods under attack, every object is down to one healthy replica.
  std::vector<std::size_t> attacked_pods = {0, 1};
  double attack_distance_m = 0.01;
  double frequency_hz = 650.0;
  double spl_air_db = 140.0;

  std::size_t clients = 1024;
  std::size_t queue_limit = 128;
  serving::AdmissionPolicy admission = serving::AdmissionPolicy::kRejectNew;

  /// Retry shaping per policy (filled by overload_experiment_config).
  resilience::BackoffConfig naive_backoff;
  resilience::BackoffConfig governed_backoff;
  resilience::RetryBudgetConfig governed_budget;
  /// Breaker knobs for the breaker-on cells (enabled is set per cell).
  resilience::BreakerConfig breaker;

  BalancerConfig balancer;  ///< placement/replication overridden per cell
  TrafficConfig traffic;    ///< duration overridden per trial

  sim::Duration warmup = sim::Duration::from_seconds(5.0);
  /// Post-attack observation window (the recovery clock runs here).
  sim::Duration observe = sim::Duration::from_seconds(600.0);

  /// A post-attack SLO window at or above this availability ends the
  /// recovery clock; below `collapsed_availability` it counts as
  /// collapsed (the metastable signature is a long run of those).
  double recovered_availability = 0.99;
  double collapsed_availability = 0.5;

  std::uint64_t seed = 0x10ad;
  unsigned jobs = 0;  ///< 0 = $DEEPNOTE_JOBS / all cores
};

/// The experiment at a time scale: warmup and the post-attack
/// observation window shrink with `scale`; rates, the client population,
/// deadlines, backoffs and the attack pulses themselves are unscaled
/// (they are the physics of the collapse, not the measurement length).
OverloadExperimentConfig overload_experiment_config(double scale = 1.0);

struct OverloadTrialRow {
  OverloadPolicy policy = OverloadPolicy::kNaive;
  bool breaker_on = false;
  sim::Duration attack = sim::Duration::zero();

  std::uint64_t requests = 0;
  std::uint64_t retries = 0;
  double attack_availability = 1.0;  ///< arrivals inside the pulse
  double post_availability = 1.0;    ///< arrivals after attack-off
  /// Attack-off to the end of the first post-attack SLO window at or
  /// above the recovery threshold; `recovered` false means it never
  /// happened and recovery_s holds the full observation length.
  double recovery_s = 0.0;
  bool recovered = false;
  /// Post-attack windows below the collapse threshold (with traffic).
  std::uint64_t collapsed_windows = 0;

  std::uint64_t retry_budget_spent = 0;
  std::uint64_t retry_budget_denied = 0;
  std::uint64_t breaker_opens = 0;
  std::uint64_t breaker_short_circuits = 0;
  std::uint64_t legs_cancelled = 0;
  std::uint64_t max_queue_depth = 0;
  std::uint64_t drains = 0;
};

/// One grid cell: an independent engine run (chaos-scripted attack,
/// serving mode, closed-loop clients), seeded from `cell_seed`.
OverloadTrialRow run_overload_cell(const OverloadExperimentConfig& config,
                                   OverloadPolicy policy, bool breaker_on,
                                   sim::Duration attack,
                                   std::uint64_t cell_seed,
                                   std::shared_ptr<const ZipfAliasSampler>
                                       zipf = nullptr,
                                   unsigned engine_jobs = 1);

/// Run the full grid; rows in (policy, breaker, attack) lexicographic
/// order, fanned across the trial pool.
std::vector<OverloadTrialRow> run_overload_experiment(
    const OverloadExperimentConfig& config);

/// Render the grid as the "overload recovery vs. retry governance"
/// table.
sim::Table build_overload_recovery_table(
    const OverloadExperimentConfig& config,
    const std::vector<OverloadTrialRow>& rows);

}  // namespace deepnote::cluster
