// Service-level accounting for cluster traffic: windowed availability,
// log-bucketed latency quantiles (p50/p99/p999), and error-budget math.
//
// Availability is request availability: a request counts as served when
// the balancer returned success within its deadline, and it is charged
// to the fixed-width window its *arrival* falls in (open-loop load — the
// client does not slow down because the service got slow). A focus
// interval (the attack window) is accounted separately and exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/stats.h"
#include "sim/time.h"

namespace deepnote::cluster {

/// Terminal state of a request (or of one replica leg inside the serving
/// pipeline). Every admitted request ends in exactly one of these.
enum class OutcomeKind : std::uint8_t {
  kServed = 0,    ///< completed successfully within its deadline
  kFailed = 1,    ///< device/storage error
  kTimedOut = 2,  ///< deadline expired (in queue or completed too late)
  kShed = 3,      ///< rejected by admission control before service
  kCancelled = 4, ///< hedge leg cancelled after the other leg won
};
inline constexpr std::size_t kNumOutcomeKinds = 5;

const char* outcome_name(OutcomeKind kind);

struct SloConfig {
  sim::Duration window = sim::Duration::from_seconds(1.0);
  /// Availability objective the error budget is measured against.
  double availability_target = 0.999;
};

class SloTracker {
 public:
  explicit SloTracker(sim::SimTime start, SloConfig config = {});

  /// Account requests arriving in [begin, end) separately (the attack
  /// window). Call before recording.
  void set_focus(sim::SimTime begin, sim::SimTime end);

  void record_success(sim::SimTime arrival, sim::Duration latency);
  void record_failure(sim::SimTime arrival);
  /// Serving-path recording: like record_success/record_failure (kServed
  /// is a success, everything else a failure) but also keeps per-kind
  /// counts so shed/timeout totals survive into reports. `latency` is
  /// only read for kServed.
  void record_outcome(sim::SimTime arrival, OutcomeKind kind,
                      sim::Duration latency = sim::Duration::zero());

  struct Window {
    std::uint64_t ok = 0;
    std::uint64_t fail = 0;
    double availability() const {
      const std::uint64_t n = ok + fail;
      return n == 0 ? 1.0 : static_cast<double>(ok) / static_cast<double>(n);
    }
  };
  /// Fixed-width windows from `start`; trailing all-zero windows absent.
  const std::vector<Window>& windows() const { return windows_; }
  sim::SimTime start() const { return start_; }
  const SloConfig& config() const { return config_; }

  std::uint64_t total() const { return ok_ + fail_; }
  std::uint64_t succeeded() const { return ok_; }
  std::uint64_t failed() const { return fail_; }
  double availability() const;
  /// Availability over the focus interval (1.0 when it saw no traffic).
  double focus_availability() const;
  std::uint64_t focus_total() const { return focus_ok_ + focus_fail_; }

  /// Per-kind totals (only populated through record_outcome; the plain
  /// success/failure entry points count as kServed / kFailed).
  std::uint64_t outcome_count(OutcomeKind kind) const {
    return kind_[static_cast<std::size_t>(kind)];
  }
  std::uint64_t focus_outcome_count(OutcomeKind kind) const {
    return focus_kind_[static_cast<std::size_t>(kind)];
  }

  const sim::LatencyHistogram& latencies() const { return latencies_; }
  sim::Duration p50() const { return latencies_.quantile(0.50); }
  sim::Duration p99() const { return latencies_.quantile(0.99); }
  sim::Duration p999() const { return latencies_.quantile(0.999); }

  /// Fraction of the error budget consumed: failures relative to the
  /// failures the target tolerates over the observed request count.
  /// > 1.0 means the SLO is violated; 0 when no traffic.
  double error_budget_consumed() const;

 private:
  Window& window_for(sim::SimTime arrival);
  void account(sim::SimTime arrival, bool ok);

  sim::SimTime start_;
  SloConfig config_;
  std::vector<Window> windows_;
  std::uint64_t ok_ = 0;
  std::uint64_t fail_ = 0;
  sim::SimTime focus_begin_ = sim::SimTime::infinity();
  sim::SimTime focus_end_ = sim::SimTime::infinity();
  std::uint64_t focus_ok_ = 0;
  std::uint64_t focus_fail_ = 0;
  std::uint64_t kind_[kNumOutcomeKinds] = {};
  std::uint64_t focus_kind_[kNumOutcomeKinds] = {};
  sim::LatencyHistogram latencies_;
};

}  // namespace deepnote::cluster
