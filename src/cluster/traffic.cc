#include "cluster/traffic.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>

#include "storage/block_device.h"

namespace deepnote::cluster {

namespace {

double zeta(std::uint64_t n, double theta) {
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

}  // namespace

ZipfGenerator::ZipfGenerator(std::uint64_t n, double theta)
    : n_(n), theta_(theta) {
  if (n_ == 0) throw std::invalid_argument("zipf: empty keyspace");
  if (theta_ <= 0.0 || theta_ >= 1.0) {
    throw std::invalid_argument("zipf: theta must be in (0, 1)");
  }
  zetan_ = zeta(n_, theta_);
  zeta2_ = zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2_ / zetan_);
}

std::uint64_t ZipfGenerator::next(sim::Rng& rng) const {
  // Gray et al.'s approximate Zipf sampler, as popularized by YCSB.
  const double u = rng.next_double();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto rank = static_cast<std::uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

ZipfAliasSampler::ZipfAliasSampler(std::uint64_t n, double theta)
    : n_(n), theta_(theta) {
  if (n_ == 0) throw std::invalid_argument("zipf: empty keyspace");
  if (n_ > 0xffffffffull) {
    throw std::invalid_argument("zipf: alias table caps at 2^32 ranks");
  }
  if (theta_ <= 0.0 || theta_ >= 1.0) {
    throw std::invalid_argument("zipf: theta must be in (0, 1)");
  }
  // One pass for the normalizer, one to split buckets into under/over
  // full, one to pair them up (Vose). All index order, fully
  // deterministic.
  std::vector<double> weight(n_);
  double sum = 0.0;
  for (std::uint64_t i = 0; i < n_; ++i) {
    weight[i] = 1.0 / std::pow(static_cast<double>(i + 1), theta_);
    sum += weight[i];
  }
  zetan_ = sum;
  accept_.assign(n_, 1.0);
  alias_.assign(n_, 0);
  // Scale so the average bucket holds exactly 1.0 of probability mass.
  const double scale = static_cast<double>(n_) / sum;
  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  small.reserve(n_);
  large.reserve(n_);
  for (std::uint64_t i = 0; i < n_; ++i) {
    weight[i] *= scale;
    if (weight[i] < 1.0) {
      small.push_back(static_cast<std::uint32_t>(i));
    } else {
      large.push_back(static_cast<std::uint32_t>(i));
    }
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    const std::uint32_t l = large.back();
    small.pop_back();
    accept_[s] = weight[s];
    alias_[s] = l;
    weight[l] -= 1.0 - weight[s];
    if (weight[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Leftovers (floating-point dust): their buckets are full.
  for (const std::uint32_t i : large) accept_[i] = 1.0;
  for (const std::uint32_t i : small) accept_[i] = 1.0;
}

std::uint64_t ZipfAliasSampler::next(sim::Rng& rng) const {
  const std::uint64_t bucket = rng.next_u64() % n_;
  const double coin = rng.next_double();
  return coin < accept_[bucket] ? bucket : alias_[bucket];
}

double ZipfAliasSampler::probability(std::uint64_t rank) const {
  return 1.0 / (std::pow(static_cast<double>(rank + 1), theta_) * zetan_);
}

void ClosedLoopPopulation::push_pending(std::uint32_t client,
                                        sim::SimTime at) {
  shard_wheels_[client / clients_per_shard_].schedule(at, client);
}

void ClosedLoopPopulation::reset(const TrafficConfig& traffic,
                                 std::size_t clients,
                                 const resilience::BackoffConfig& backoff,
                                 resilience::RetryBudget* budget,
                                 sim::SimTime start, std::size_t shards) {
  if (clients == 0) {
    throw std::invalid_argument("closed loop: needs at least one client");
  }
  if (traffic.arrival_rate_per_s <= 0.0) {
    throw std::invalid_argument("closed loop: arrival rate must be positive");
  }
  if (backoff.base.ns() <= 0) {
    // A zero delay would let a retry re-enter the very round that shed
    // it — livelock fuel; the engine's round loop relies on every
    // re-issue moving strictly forward in time.
    throw std::invalid_argument("closed loop: backoff base must be positive");
  }
  if (backoff.jitter < 0.0 || backoff.jitter > 1.0) {
    throw std::invalid_argument("closed loop: jitter must be in [0, 1]");
  }
  if (shards == 0) shards = 1;
  if (shards > clients) shards = clients;
  think_mean_s_ = static_cast<double>(clients) / traffic.arrival_rate_per_s;
  read_fraction_ = traffic.read_fraction;
  backoff_ = backoff;
  budget_ = budget;
  retries_ = 0;
  clients_.assign(clients, Client{});
  clients_per_shard_ = (clients + shards - 1) / shards;
  // Keep warm wheel slabs when the shard layout repeats; otherwise
  // rebuild the vector (TimerWheel is movable, not copyable).
  if (shard_wheels_.size() != shards) {
    shard_wheels_.clear();
    shard_wheels_.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) shard_wheels_.emplace_back();
  }
  for (sim::TimerWheel& wheel : shard_wheels_) {
    wheel.reset(start);
    wheel.reserve(clients_per_shard_);
  }
  sim::Rng master(traffic.seed);
  for (std::uint32_t i = 0; i < clients_.size(); ++i) {
    Client& c = clients_[i];
    c.rng = master.fork();
    // Jitter draws must not consume the key stream: fork a private
    // splitmix64 state per client off the traffic seed.
    c.jitter_state =
        traffic.seed ^ (0x9e3779b97f4a7c15ull * (std::uint64_t{i} + 1));
    push_pending(i, start + sim::Duration::from_seconds(
                               c.rng.exponential(think_mean_s_)));
  }
}

void ClosedLoopPopulation::collect_due(sim::SimTime horizon,
                                       const ZipfAliasSampler& zipf,
                                       std::vector<ClientIssue>& out) {
  const std::size_t first = out.size();
  // The wheel fires deadline <= t; collect_due's contract is strictly
  // below the horizon, so harvest to horizon - 1ns.
  const sim::SimTime limit{horizon.ns() - 1};
  for (sim::TimerWheel& wheel : shard_wheels_) {
    expired_.clear();
    wheel.advance(limit, expired_);
    for (const sim::TimerWheel::Expired& e : expired_) {
      const auto client = static_cast<std::uint32_t>(e.payload);
      Client& c = clients_[client];
      if (c.has_retry == 0) {
        // Drawn against the client's own forked stream, so the order
        // shards (or clients within one) are visited cannot matter.
        c.key = zipf.next(c.rng);
        c.is_read = c.rng.bernoulli(read_fraction_) ? 1 : 0;
        c.attempts = 0;
        if (budget_ != nullptr) budget_->earn();
      }
      out.push_back(ClientIssue{e.deadline, client, c.key, c.is_read != 0});
      // The client is now in flight: it re-enters its wheel at complete().
    }
  }
  // Each shard fires in (at, schedule) order; merging the streams is a
  // sort of the (typically tiny) due set. (at, client) pairs are unique,
  // so the merged order — and every byte downstream — is independent of
  // the shard layout.
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(first), out.end(),
            [](const ClientIssue& a, const ClientIssue& b) {
              return a.at == b.at ? a.client < b.client : a.at < b.at;
            });
}

void ClosedLoopPopulation::complete(std::uint32_t client, sim::SimTime when,
                                    OutcomeKind outcome) {
  Client& c = clients_[client];
  const bool retryable =
      outcome == OutcomeKind::kShed ||
      (backoff_.retry_failures && (outcome == OutcomeKind::kFailed ||
                                   outcome == OutcomeKind::kTimedOut));
  if (retryable && c.attempts < backoff_.max_retries &&
      (budget_ == nullptr || budget_->try_spend())) {
    ++c.attempts;
    ++retries_;
    c.has_retry = 1;
    push_pending(client,
                 when + resilience::backoff_delay(
                            backoff_, c.attempts,
                            resilience::next_jitter_word(c.jitter_state)));
    return;
  }
  c.has_retry = 0;
  push_pending(client, when + sim::Duration::from_seconds(
                           c.rng.exponential(think_mean_s_)));
}

TrafficRunner::TrafficRunner(Balancer& balancer, TrafficConfig config)
    : balancer_(balancer), config_(config) {
  if (config_.clients == 0) {
    throw std::invalid_argument("traffic: needs at least one client");
  }
  if (config_.arrival_rate_per_s <= 0.0) {
    throw std::invalid_argument("traffic: arrival rate must be positive");
  }
  if (config_.read_fraction < 0.0 || config_.read_fraction > 1.0) {
    throw std::invalid_argument("traffic: read fraction must be in [0, 1]");
  }
}

TrafficReport TrafficRunner::run(sim::SimTime start, SloTracker& slo,
                                 std::vector<TimelineAction> actions) {
  const sim::SimTime end = start + config_.duration;
  const double per_client_mean_s =
      static_cast<double>(config_.clients) / config_.arrival_rate_per_s;
  const ZipfGenerator zipf(config_.keyspace, config_.zipf_theta);

  struct Client {
    sim::Rng rng{0};
    sim::SimTime next_arrival = sim::SimTime::zero();
  };
  sim::Rng master(config_.seed);
  std::vector<Client> clients(config_.clients);
  for (Client& c : clients) {
    c.rng = master.fork();
    c.next_arrival =
        start + sim::Duration::from_seconds(
                    c.rng.exponential(per_client_mean_s));
  }

  const std::size_t object_bytes =
      static_cast<std::size_t>(balancer_.config().object_sectors) *
      storage::kBlockSectorSize;
  std::vector<std::byte> buffer(object_bytes, std::byte{0x5a});

  TrafficReport report;
  std::size_t next_action = 0;
  // Latest completion handed out so far. Timeline actions fire no
  // earlier than this: a device whose last command finished at T must
  // not see its environment change at T' < T.
  sim::SimTime frontier = start;

  while (true) {
    // Min-scan merge of the client streams, ties broken by index.
    std::size_t who = 0;
    for (std::size_t c = 1; c < clients.size(); ++c) {
      if (clients[c].next_arrival < clients[who].next_arrival) who = c;
    }
    Client& client = clients[who];
    const sim::SimTime arrival = client.next_arrival;
    if (arrival >= end) break;

    while (next_action < actions.size() && actions[next_action].at <= arrival) {
      actions[next_action].fn(sim::max(actions[next_action].at, frontier));
      ++next_action;
    }
    balancer_.run_probes(arrival);

    const std::uint64_t key = zipf.next(client.rng);
    const bool is_read = client.rng.bernoulli(config_.read_fraction);
    RequestOutcome outcome;
    if (is_read) {
      ++report.reads;
      outcome = balancer_.read(arrival, key, buffer);
    } else {
      ++report.writes;
      outcome = balancer_.write(arrival, key, buffer);
    }
    ++report.requests;
    frontier = sim::max(frontier, outcome.complete);
    if (outcome.ok) {
      slo.record_success(arrival, outcome.complete - arrival);
    } else {
      slo.record_failure(arrival);
    }

    client.next_arrival =
        arrival + sim::Duration::from_seconds(
                      client.rng.exponential(per_client_mean_s));
  }

  // Fire any trailing actions (e.g. attack off after the last arrival).
  while (next_action < actions.size() && actions[next_action].at < end) {
    actions[next_action].fn(sim::max(actions[next_action].at, frontier));
    ++next_action;
  }
  return report;
}

}  // namespace deepnote::cluster
