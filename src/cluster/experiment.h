// The cluster availability experiment: a serving datacenter under a
// single-pod acoustic attack, swept over placement policy and attacker
// distance.
//
// Each grid cell is one independent trial (own Cluster, Balancer,
// traffic stream; seeded by sim::trial_seed) fanned across the parallel
// trial engine — output is bit-identical at any DEEPNOTE_JOBS setting.
// A trial serves warmup traffic, insonifies one pod at 650 Hz / 140 dB
// for the attack window, then cools down; availability inside the
// window is accounted separately.
//
// The headline the table pins down: cross-pod 3-way replication rides
// out a pod-level attack above 99% availability, while the dense
// same-pod layout loses every replica at once and collapses.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cluster/balancer.h"
#include "cluster/engine.h"
#include "cluster/node.h"
#include "cluster/traffic.h"
#include "sim/table.h"

namespace deepnote::cluster {

struct ClusterExperimentConfig {
  core::ScenarioId scenario = core::ScenarioId::kPlasticTower;
  ClusterTopology topology;  ///< pods x bays_per_pod (default 3 x 5)
  std::vector<PlacementPolicy> policies = {
      PlacementPolicy::kSamePod,
      PlacementPolicy::kCrossPod,
      PlacementPolicy::kRackAware,
  };
  /// Attacker distances swept; nullopt = no-attack baseline row.
  std::vector<std::optional<double>> distances_m = {
      std::nullopt, 0.01, 0.05, 0.10, 0.25, 0.50};
  double frequency_hz = 650.0;
  double spl_air_db = 140.0;
  std::size_t attacked_pod = 0;

  std::size_t replication = 3;
  BalancerConfig balancer;  ///< policy field overridden per grid cell
  TrafficConfig traffic;    ///< duration field overridden per trial

  sim::Duration warmup = sim::Duration::from_seconds(10.0);
  sim::Duration attack_window = sim::Duration::from_seconds(40.0);
  sim::Duration cooldown = sim::Duration::from_seconds(10.0);

  std::uint64_t seed = 0xdeeb;
  unsigned jobs = 0;  ///< 0 = $DEEPNOTE_JOBS / all cores
};

/// The experiment at a given time scale (1.0 = the full 10/40/10 s
/// timeline; tests and benches run fractions of it). Rates, topology and
/// the policy/distance grid are unchanged by `scale`.
ClusterExperimentConfig cluster_experiment_config(double scale = 1.0);

struct ClusterTrialRow {
  PlacementPolicy policy = PlacementPolicy::kSamePod;
  std::optional<double> distance_m;

  std::uint64_t requests = 0;
  std::uint64_t failed = 0;
  double availability = 1.0;         ///< whole run
  double attack_availability = 1.0;  ///< attack-window arrivals only
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;

  std::uint64_t read_failovers = 0;
  std::uint64_t hedged_reads = 0;
  std::uint64_t drains = 0;
  std::uint64_t readmits = 0;
};

/// One grid cell on the sharded epoch engine (the default path —
/// run_cluster_experiment fans these across the trial pool). `zipf`
/// optionally shares a pre-built alias table across cells/iterations;
/// `engine_jobs` is the engine's internal wave parallelism (1 = inline,
/// the right setting when cells already fan across the trial pool).
ClusterTrialRow run_cluster_cell(const ClusterExperimentConfig& config,
                                 PlacementPolicy policy,
                                 std::optional<double> distance_m,
                                 std::uint64_t cell_seed,
                                 std::shared_ptr<const ZipfAliasSampler> zipf =
                                     nullptr,
                                 unsigned engine_jobs = 1);

/// The same cell on the PR5 serial composition (Balancer +
/// TrafficRunner, one request at a time). Kept as the reference the
/// engine's speedup is measured against in bench_json.
ClusterTrialRow run_cluster_cell_serial(const ClusterExperimentConfig& config,
                                        PlacementPolicy policy,
                                        std::optional<double> distance_m,
                                        std::uint64_t cell_seed);

/// Run the full grid; rows in (policy-major, distance-minor) order.
std::vector<ClusterTrialRow> run_cluster_experiment(
    const ClusterExperimentConfig& config);

/// Render the grid as the "cluster availability vs. replication policy
/// and attack distance" table.
sim::Table build_cluster_availability_table(
    const ClusterExperimentConfig& config,
    const std::vector<ClusterTrialRow>& rows);

}  // namespace deepnote::cluster
