// The cluster availability experiment: a serving datacenter under a
// single-pod acoustic attack, swept over placement policy and attacker
// distance.
//
// Each grid cell is one independent trial (own Cluster, Balancer,
// traffic stream; seeded by sim::trial_seed) fanned across the parallel
// trial engine — output is bit-identical at any DEEPNOTE_JOBS setting.
// A trial serves warmup traffic, insonifies one pod at 650 Hz / 140 dB
// for the attack window, then cools down; availability inside the
// window is accounted separately.
//
// The headline the table pins down: cross-pod 3-way replication rides
// out a pod-level attack above 99% availability, while the dense
// same-pod layout loses every replica at once and collapses.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cluster/balancer.h"
#include "cluster/engine.h"
#include "cluster/node.h"
#include "cluster/traffic.h"
#include "sim/table.h"

namespace deepnote::cluster {

struct ClusterExperimentConfig {
  core::ScenarioId scenario = core::ScenarioId::kPlasticTower;
  ClusterTopology topology;  ///< pods x bays_per_pod (default 3 x 5)
  std::vector<PlacementPolicy> policies = {
      PlacementPolicy::kSamePod,
      PlacementPolicy::kCrossPod,
      PlacementPolicy::kRackAware,
  };
  /// Attacker distances swept; nullopt = no-attack baseline row.
  std::vector<std::optional<double>> distances_m = {
      std::nullopt, 0.01, 0.05, 0.10, 0.25, 0.50};
  double frequency_hz = 650.0;
  double spl_air_db = 140.0;
  std::size_t attacked_pod = 0;

  std::size_t replication = 3;
  BalancerConfig balancer;  ///< policy field overridden per grid cell
  TrafficConfig traffic;    ///< duration field overridden per trial

  sim::Duration warmup = sim::Duration::from_seconds(10.0);
  sim::Duration attack_window = sim::Duration::from_seconds(40.0);
  sim::Duration cooldown = sim::Duration::from_seconds(10.0);

  std::uint64_t seed = 0xdeeb;
  unsigned jobs = 0;  ///< 0 = $DEEPNOTE_JOBS / all cores
};

/// The experiment at a given time scale (1.0 = the full 10/40/10 s
/// timeline; tests and benches run fractions of it). Rates, topology and
/// the policy/distance grid are unchanged by `scale`.
ClusterExperimentConfig cluster_experiment_config(double scale = 1.0);

struct ClusterTrialRow {
  PlacementPolicy policy = PlacementPolicy::kSamePod;
  std::optional<double> distance_m;

  std::uint64_t requests = 0;
  std::uint64_t failed = 0;
  double availability = 1.0;         ///< whole run
  double attack_availability = 1.0;  ///< attack-window arrivals only
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;

  std::uint64_t read_failovers = 0;
  std::uint64_t hedged_reads = 0;
  std::uint64_t drains = 0;
  std::uint64_t readmits = 0;
};

/// One grid cell on the sharded epoch engine (the default path —
/// run_cluster_experiment fans these across the trial pool). `zipf`
/// optionally shares a pre-built alias table across cells/iterations;
/// `engine_jobs` is the engine's internal wave parallelism (1 = inline,
/// the right setting when cells already fan across the trial pool).
ClusterTrialRow run_cluster_cell(const ClusterExperimentConfig& config,
                                 PlacementPolicy policy,
                                 std::optional<double> distance_m,
                                 std::uint64_t cell_seed,
                                 std::shared_ptr<const ZipfAliasSampler> zipf =
                                     nullptr,
                                 unsigned engine_jobs = 1);

/// The same cell on the PR5 serial composition (Balancer +
/// TrafficRunner, one request at a time). Kept as the reference the
/// engine's speedup is measured against in bench_json.
ClusterTrialRow run_cluster_cell_serial(const ClusterExperimentConfig& config,
                                        PlacementPolicy policy,
                                        std::optional<double> distance_m,
                                        std::uint64_t cell_seed);

/// Run the full grid; rows in (policy-major, distance-minor) order.
std::vector<ClusterTrialRow> run_cluster_experiment(
    const ClusterExperimentConfig& config);

/// Render the grid as the "cluster availability vs. replication policy
/// and attack distance" table.
sim::Table build_cluster_availability_table(
    const ClusterExperimentConfig& config,
    const std::vector<ClusterTrialRow>& rows);

// --- serving (queueing) experiment --------------------------------------
//
// The availability grid answers "does replication ride out the attack";
// this one answers "what does the *service* look like while it does":
// queue growth, shed/timeout counts, the queue-wait vs. service-time
// decomposition, and retry-storm amplification, swept over the serving
// knobs (queue limit, admission policy) with closed-loop clients.

struct ServingExperimentConfig {
  core::ScenarioId scenario = core::ScenarioId::kPlasticTower;
  ClusterTopology topology;  ///< pods x bays_per_pod (default 3 x 5)
  /// Placement is fixed cross-pod: the grid isolates queueing behavior,
  /// the availability experiment already sweeps placement.
  PlacementPolicy policy = PlacementPolicy::kCrossPod;
  std::size_t replication = 3;

  std::vector<std::size_t> queue_limits = {4, 32};
  std::vector<serving::AdmissionPolicy> admissions = {
      serving::AdmissionPolicy::kRejectNew,
      serving::AdmissionPolicy::kDropOldest,
  };
  /// nullopt = no-attack baseline row.
  std::vector<std::optional<double>> distances_m = {std::nullopt, 0.01};
  double frequency_hz = 650.0;
  double spl_air_db = 140.0;
  std::size_t attacked_pod = 0;

  BalancerConfig balancer;    ///< policy/replication overridden per cell
  TrafficConfig traffic;      ///< duration overridden per trial
  ServingModeConfig serving;  ///< enabled forced on; queue knobs per cell

  sim::Duration warmup = sim::Duration::from_seconds(10.0);
  sim::Duration attack_window = sim::Duration::from_seconds(40.0);
  sim::Duration cooldown = sim::Duration::from_seconds(10.0);

  std::uint64_t seed = 0x5e4e;
  unsigned jobs = 0;  ///< 0 = $DEEPNOTE_JOBS / all cores
};

/// The serving experiment at a time scale (1.0 = the full 10/40/10 s
/// timeline); rates, topology, and the knob grid are unchanged.
ServingExperimentConfig serving_experiment_config(double scale = 1.0);

struct ServingTrialRow {
  std::size_t queue_limit = 0;
  serving::AdmissionPolicy admission = serving::AdmissionPolicy::kRejectNew;
  std::optional<double> distance_m;

  std::uint64_t requests = 0;
  double availability = 1.0;
  double attack_availability = 1.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  /// The latency decomposition across served/failed device legs.
  double queue_wait_p99_ms = 0.0;
  double service_p99_ms = 0.0;

  /// Request-level failure classification (a request only counts when
  /// every replica path was exhausted — replication absorbs most leg
  /// trouble) and the leg-level raw counts underneath it.
  std::uint64_t shed_requests = 0;
  std::uint64_t timed_out_requests = 0;
  std::uint64_t legs_shed = 0;
  std::uint64_t legs_timed_out = 0;
  std::uint64_t attack_shed = 0;       ///< attack-window arrivals only
  std::uint64_t attack_timed_out = 0;
  std::uint64_t client_retries = 0;    ///< retry-storm amplification
  std::uint64_t max_queue_depth = 0;
  std::uint64_t attack_max_queue_depth = 0;
  std::uint64_t read_failovers = 0;
  std::uint64_t drains = 0;
};

/// One serving grid cell on the engine in serving mode.
ServingTrialRow run_serving_cell(const ServingExperimentConfig& config,
                                 std::size_t queue_limit,
                                 serving::AdmissionPolicy admission,
                                 std::optional<double> distance_m,
                                 std::uint64_t cell_seed,
                                 std::shared_ptr<const ZipfAliasSampler> zipf =
                                     nullptr,
                                 unsigned engine_jobs = 1);

/// Run the full knob grid; rows in (queue-limit, admission, distance)
/// lexicographic order, fanned across the trial pool.
std::vector<ServingTrialRow> run_serving_experiment(
    const ServingExperimentConfig& config);

/// Render the grid as the "serving behavior under attack vs. queue
/// limit and admission policy" table.
sim::Table build_cluster_serving_table(const ServingExperimentConfig& config,
                                       const std::vector<ServingTrialRow>& rows);

}  // namespace deepnote::cluster
