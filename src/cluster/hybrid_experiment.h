// The hybrid-tiering availability experiment: node type (pure HDD vs.
// flash-fronted hybrid) x attacker distance x attack duration, under the
// WORST placement — same-pod, every replica of every object inside the
// attacked enclosure.
//
// The availability grid (experiment.h) showed placement is one way out:
// spread replicas across pods and a pod-level attack costs one replica.
// This grid shows the orthogonal way out when placement cannot save you:
// a flash tier with no spinning medium to disturb. The headline the
// table pins down: the same attack that drops a same-pod pure-HDD cell
// below 15% availability leaves the hybrid cell above 99%, and longer
// attacks (the duration axis) do not change that — the flash tier holds
// for as long as the heads stay parked, then drains its dirty pages
// back to the HDDs after the field clears.
//
// Each cell is one independent trial on the sharded engine, seeded by
// sim::trial_seed and fanned across the trial pool — bit-identical at
// any DEEPNOTE_JOBS setting.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/balancer.h"
#include "cluster/node.h"
#include "cluster/traffic.h"
#include "sim/table.h"

namespace deepnote::cluster {

struct HybridExperimentConfig {
  core::ScenarioId scenario = core::ScenarioId::kPlasticTower;
  ClusterTopology topology;  ///< pods x bays_per_pod (default 3 x 5)
  std::vector<NodeType> node_types = {NodeType::kHdd, NodeType::kHybrid};
  /// Attacker distances swept; nullopt = no-attack baseline row (run at
  /// multiplier 1.0 only — baselines do not vary with attack length).
  std::vector<std::optional<double>> distances_m = {std::nullopt, 0.01,
                                                    0.05};
  /// Attack-window lengths as multiples of `attack_window`.
  std::vector<double> attack_multipliers = {0.5, 1.0, 2.0};
  double frequency_hz = 650.0;
  double spl_air_db = 140.0;
  std::size_t attacked_pod = 0;

  /// Same-pod on purpose: the placement experiment already covers
  /// spreading replicas; this grid isolates what the flash tier buys
  /// when every replica shares the blast radius.
  PlacementPolicy policy = PlacementPolicy::kSamePod;
  std::size_t replication = 3;
  BalancerConfig balancer;  ///< policy/replication overridden per cell
  TrafficConfig traffic;    ///< duration overridden per trial
  HybridConfig hybrid;      ///< flash tier for the hybrid rows

  sim::Duration warmup = sim::Duration::from_seconds(10.0);
  sim::Duration attack_window = sim::Duration::from_seconds(40.0);
  sim::Duration cooldown = sim::Duration::from_seconds(10.0);

  std::uint64_t seed = 0xf1a8;
  unsigned jobs = 0;  ///< 0 = $DEEPNOTE_JOBS / all cores
};

/// The experiment at a time scale (1.0 = the full 10/40/10 s timeline);
/// rates, topology, and the grid are unchanged by `scale`.
HybridExperimentConfig hybrid_experiment_config(double scale = 1.0);

struct HybridTrialRow {
  NodeType node_type = NodeType::kHdd;
  std::optional<double> distance_m;
  double attack_multiplier = 1.0;

  std::uint64_t requests = 0;
  std::uint64_t failed = 0;
  double availability = 1.0;
  double attack_availability = 1.0;  ///< attack-window arrivals only
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t read_failovers = 0;
  std::uint64_t drains = 0;

  /// Flash-tier telemetry summed over the fleet (all zero on HDD rows).
  std::uint64_t absorbed_errors = 0;
  std::uint64_t flash_only_ops = 0;
  std::uint64_t drained_pages = 0;
  std::uint64_t probes = 0;
  std::uint64_t dirty_pages_left = 0;  ///< un-drained at end of run
  /// Worst SMART 177 (media wearout) normalized value across the fleet.
  int media_wearout = 100;
};

/// One grid cell on the sharded epoch engine.
HybridTrialRow run_hybrid_cell(const HybridExperimentConfig& config,
                               NodeType node_type,
                               std::optional<double> distance_m,
                               double attack_multiplier,
                               std::uint64_t cell_seed,
                               std::shared_ptr<const ZipfAliasSampler> zipf =
                                   nullptr,
                               unsigned engine_jobs = 1);

/// Run the full grid; rows in (node type, distance, multiplier) order,
/// with baseline (no-attack) rows only at multiplier 1.0.
std::vector<HybridTrialRow> run_hybrid_experiment(
    const HybridExperimentConfig& config);

/// Render the grid as the "hybrid tiering availability vs. node type,
/// distance and attack duration" table.
sim::Table build_hybrid_availability_table(
    const HybridExperimentConfig& config,
    const std::vector<HybridTrialRow>& rows);

}  // namespace deepnote::cluster
