#include "cluster/slo.h"

#include <stdexcept>

namespace deepnote::cluster {

const char* outcome_name(OutcomeKind kind) {
  switch (kind) {
    case OutcomeKind::kServed: return "served";
    case OutcomeKind::kFailed: return "failed";
    case OutcomeKind::kTimedOut: return "timed-out";
    case OutcomeKind::kShed: return "shed";
    case OutcomeKind::kCancelled: return "cancelled";
  }
  return "?";
}

SloTracker::SloTracker(sim::SimTime start, SloConfig config)
    : start_(start), config_(config) {
  if (config_.window.ns() <= 0) {
    throw std::invalid_argument("slo: window must be positive");
  }
  if (config_.availability_target <= 0.0 ||
      config_.availability_target >= 1.0) {
    throw std::invalid_argument("slo: target must be in (0, 1)");
  }
}

void SloTracker::set_focus(sim::SimTime begin, sim::SimTime end) {
  focus_begin_ = begin;
  focus_end_ = end;
}

SloTracker::Window& SloTracker::window_for(sim::SimTime arrival) {
  const std::int64_t offset_ns = (arrival - start_).ns();
  const std::size_t index = offset_ns <= 0
                                ? 0
                                : static_cast<std::size_t>(
                                      offset_ns / config_.window.ns());
  if (index >= windows_.size()) windows_.resize(index + 1);
  return windows_[index];
}

void SloTracker::account(sim::SimTime arrival, bool ok) {
  Window& w = window_for(arrival);
  if (ok) {
    ++w.ok;
    ++ok_;
  } else {
    ++w.fail;
    ++fail_;
  }
  if (arrival >= focus_begin_ && arrival < focus_end_) {
    if (ok) {
      ++focus_ok_;
    } else {
      ++focus_fail_;
    }
  }
}

void SloTracker::record_success(sim::SimTime arrival, sim::Duration latency) {
  record_outcome(arrival, OutcomeKind::kServed, latency);
}

void SloTracker::record_failure(sim::SimTime arrival) {
  record_outcome(arrival, OutcomeKind::kFailed);
}

void SloTracker::record_outcome(sim::SimTime arrival, OutcomeKind kind,
                                sim::Duration latency) {
  const bool ok = kind == OutcomeKind::kServed;
  account(arrival, ok);
  ++kind_[static_cast<std::size_t>(kind)];
  if (arrival >= focus_begin_ && arrival < focus_end_) {
    ++focus_kind_[static_cast<std::size_t>(kind)];
  }
  if (ok) latencies_.add(latency);
}

double SloTracker::availability() const {
  const std::uint64_t n = total();
  return n == 0 ? 1.0 : static_cast<double>(ok_) / static_cast<double>(n);
}

double SloTracker::focus_availability() const {
  const std::uint64_t n = focus_total();
  return n == 0 ? 1.0
               : static_cast<double>(focus_ok_) / static_cast<double>(n);
}

double SloTracker::error_budget_consumed() const {
  const std::uint64_t n = total();
  if (n == 0) return 0.0;
  const double allowed =
      static_cast<double>(n) * (1.0 - config_.availability_target);
  return allowed <= 0.0 ? 0.0 : static_cast<double>(fail_) / allowed;
}

}  // namespace deepnote::cluster
