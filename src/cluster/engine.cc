#include "cluster/engine.h"

#include <algorithm>
#include <stdexcept>

namespace deepnote::cluster {

namespace {

std::uint8_t health_rank(NodeHealth health) {
  switch (health) {
    case NodeHealth::kHealthy: return 0;
    case NodeHealth::kDegraded: return 1;
    case NodeHealth::kDrained: return 2;
  }
  return 3;
}

constexpr std::uint8_t kDrainedRank = 2;

}  // namespace

ShardedClusterEngine::ShardedClusterEngine(
    ClusterTopology topology, std::vector<storage::BlockDevice*> devices,
    EngineConfig config)
    : topology_(topology),
      devices_(std::move(devices)),
      config_(config),
      placement_(topology, config.balancer.policy, config.balancer.replication),
      write_quorum_(config.balancer.write_quorum != 0
                        ? config.balancer.write_quorum
                        : config.balancer.replication / 2 + 1),
      leg_stride_(std::max<std::size_t>(config.balancer.replication, 2)),
      zipf_(std::move(config.zipf)) {
  if (devices_.size() != topology_.nodes()) {
    throw std::invalid_argument("engine: device list does not match topology");
  }
  if (write_quorum_ > config_.balancer.replication) {
    throw std::invalid_argument("engine: write quorum exceeds replication");
  }
  if (config_.balancer.objects == 0 || config_.balancer.object_sectors == 0) {
    throw std::invalid_argument("engine: empty object space");
  }
  for (storage::BlockDevice* device : devices_) {
    if (config_.balancer.objects * config_.balancer.object_sectors >
        device->total_sectors()) {
      throw std::invalid_argument("engine: object space exceeds a device");
    }
  }
  if (config_.traffic.arrival_rate_per_s <= 0.0) {
    throw std::invalid_argument("engine: arrival rate must be positive");
  }
  if (config_.traffic.read_fraction < 0.0 ||
      config_.traffic.read_fraction > 1.0) {
    throw std::invalid_argument("engine: read fraction must be in [0, 1]");
  }
  if (config_.epoch.ns() <= 0) {
    throw std::invalid_argument("engine: epoch must be positive");
  }
  if (zipf_) {
    if (zipf_->n() != config_.traffic.keyspace ||
        zipf_->theta() != config_.traffic.zipf_theta) {
      throw std::invalid_argument(
          "engine: shared zipf table does not match the traffic config");
    }
  } else {
    zipf_ = std::make_shared<const ZipfAliasSampler>(config_.traffic.keyspace,
                                                     config_.traffic.zipf_theta);
  }
  mean_gap_s_ = 1.0 / config_.traffic.arrival_rate_per_s;
  hedge_threshold_s_ = config_.balancer.hedge_threshold.seconds();

  const std::size_t n = devices_.size();
  const unsigned jobs = sim::resolve_jobs(config_.jobs == 0 ? 0 : config_.jobs);
  if (jobs >= 2 && n >= 2) {
    // More shards than workers so the pool's dynamic index claiming can
    // balance skew (the attacked pod's shard runs long error paths).
    shard_count_ = static_cast<unsigned>(
        std::min<std::size_t>(n, std::size_t{jobs} * 4));
    pool_ = std::make_unique<sim::TaskPool>(jobs);
  } else {
    shard_count_ = 1;
  }
  nodes_per_shard_ = (n + shard_count_ - 1) / shard_count_;
  wave_fn_ = [this](std::size_t shard) {
    execute_nodes(shard, shard + 1, shard);
  };
  node_shard_.resize(n);
  for (std::size_t id = 0; id < n; ++id) {
    node_shard_[id] = static_cast<std::uint32_t>(id / nodes_per_shard_);
  }
  shard_active_.resize(shard_count_);

  const std::size_t buf_sectors = std::max<std::size_t>(
      config_.balancer.object_sectors, config_.balancer.probe_sectors);
  shard_read_buf_.resize(shard_count_);
  for (auto& buf : shard_read_buf_) {
    buf.resize(buf_sectors * storage::kBlockSectorSize);
  }
  write_buf_.assign(static_cast<std::size_t>(config_.balancer.object_sectors) *
                        storage::kBlockSectorSize,
                    std::byte{0x5a});
  shard_frontier_.assign(shard_count_, sim::SimTime::zero());
  node_ops_.resize(n);

  chaos_down_.assign(n, 0);
  chaos_flap_.assign(n, 0);
  chaos_touched_.assign(n, 0);

  if (config_.serving.enabled) {
    if (config_.serving.closed_loop) {
      if (config_.serving.clients == 0) {
        throw std::invalid_argument("engine: closed loop needs clients");
      }
      if (config_.serving.backoff.base.ns() <= 0) {
        throw std::invalid_argument("engine: backoff base must be positive");
      }
      if (config_.serving.backoff.jitter < 0.0 ||
          config_.serving.backoff.jitter > 1.0) {
        throw std::invalid_argument("engine: backoff jitter must be in [0, 1]");
      }
    }
    // Pre-size every pipeline's pools here, outside any timed run: the
    // queue plus the in-flight command bounds live contexts, and the
    // ring estimate covers a typical epoch batch (they grow on demand
    // if a node runs hotter). Deep queues (the overload study runs
    // hundreds of slots) cap the up-front reservation — ~64 B per slot
    // per node is real memory at 10k nodes — and grow only where
    // traffic actually lands.
    const std::size_t ctx_slots =
        std::min<std::size_t>(config_.serving.server.queue_limit + 1, 33);
    servers_.reserve(n);
    for (std::size_t id = 0; id < n; ++id) {
      servers_.emplace_back(*devices_[id], config_.serving.server);
      servers_.back().reserve(ctx_slots, 2 * ctx_slots);
    }
    depth_dirty_.resize(n, 0);
    shard_depth_dirty_.resize(shard_count_);
    server_used_.resize(n, 0);
    shard_used_.resize(shard_count_);
    shard_qwait_.resize(shard_count_);
    shard_service_.resize(shard_count_);
  }
}

sim::SimTime ShardedClusterEngine::deadline_of(std::uint32_t r) const {
  return req_arrival_[r] + config_.balancer.request_deadline;
}

bool ShardedClusterEngine::spend_retry_token() {
  if (retry_tokens_ < 1.0) return false;
  retry_tokens_ -= 1.0;
  return true;
}

void ShardedClusterEngine::refill_retry_tokens() {
  retry_tokens_ = std::min(config_.balancer.retry_budget_cap,
                           retry_tokens_ + config_.balancer.retry_budget_ratio);
}

EngineReport ShardedClusterEngine::run(sim::SimTime start, SloTracker& slo,
                                       std::vector<TimelineAction> actions) {
  start_run(start, slo, std::move(actions));
  while (step()) {
  }
  return finish();
}

void ShardedClusterEngine::start_run(sim::SimTime start, SloTracker& slo,
                                     std::vector<TimelineAction> actions) {
  slo_ = &slo;
  actions_ = std::move(actions);
  next_action_ = 0;
  start_ = cursor_ = frontier_ = start;
  end_ = start + config_.traffic.duration;
  rng_ = sim::Rng(config_.traffic.seed);
  next_arrival_ =
      start + sim::Duration::from_seconds(rng_.exponential(mean_gap_s_));
  retry_tokens_ = config_.balancer.retry_budget_cap;
  stats_ = {};
  traffic_ = {};
  max_node_depth_ = 0;
  op_seq_ = 0;
  ops_emitted_ = 0;

  const std::size_t n = devices_.size();
  detectors_.assign(n, core::AttackDetector(config_.detector));
  health_.assign(n, NodeHealth::kHealthy);
  next_probe_.assign(n, sim::SimTime::infinity());
  rank_snap_.assign(n, 0);
  hot_snap_.assign(n, 0);
  node_reads_.assign(n, 0);
  node_writes_.assign(n, 0);
  node_errors_.assign(n, 0);
  node_depth_.assign(n, 0);
  for (auto& ops : node_ops_) ops.clear();
  for (auto& active : shard_active_) active.clear();
  for (auto& frontier : shard_frontier_) frontier = start;
  pending_.clear();
  next_pending_.clear();
  // The two wave lists swap roles every failover wave. If the last run
  // ended after an odd number of swaps, restore the canonical
  // orientation (a free exchange — both are empty) so a warm replay
  // hands each vector the exact role sequence that sized it.
  if (wave_lists_flipped_) {
    pending_.swap(next_pending_);
    wave_lists_flipped_ = false;
  }

  // Clear chaos left over from the previous run's schedule (O(touched)).
  for (const NodeId node : chaos_touched_list_) {
    chaos_down_[node] = 0;
    chaos_flap_[node] = 0;
    chaos_touched_[node] = 0;
    if (serving()) servers_[node].set_service_scale(1.0);
  }
  chaos_touched_list_.clear();

  breakers_.reset(n, shard_count_, nodes_per_shard_, config_.breaker);
  brownout_.reset(config_.brownout);
  retry_budget_ = resilience::RetryBudget(config_.serving.retry_budget);
  retry_budget_.reset();
  brownout_shed_ = 0;
  epoch_misses_ = 0;
  epoch_brownout_shed_ = 0;

  if (serving()) {
    // Only servers the previous run actually submitted to hold state;
    // the rest are still pristine (a fresh engine resets nothing).
    for (auto& used : shard_used_) {
      for (const NodeId node : used) {
        servers_[node].reset();
        server_used_[node] = 0;
      }
      used.clear();
    }
    std::fill(depth_dirty_.begin(), depth_dirty_.end(), 0);
    for (auto& dirty : shard_depth_dirty_) dirty.clear();
    for (auto& hist : shard_qwait_) hist.reset();
    for (auto& hist : shard_service_) hist.reset();
    qwait_hist_.reset();
    service_hist_.reset();
    depth_timeline_.clear();
    // One sample per epoch, plus the action-clamped extras.
    depth_timeline_.reserve(
        static_cast<std::size_t>(config_.traffic.duration.ns() /
                                 config_.epoch.ns()) +
        actions_.size() + 2);
    shed_requests_ = 0;
    timed_out_requests_ = 0;
    error_requests_ = 0;
    if (config_.serving.closed_loop) {
      clients_.reset(config_.traffic, config_.serving.clients,
                     config_.serving.backoff,
                     config_.serving.retry_budget.enabled ? &retry_budget_
                                                          : nullptr,
                     start, shard_count_);
    }
  }
  running_ = true;
}

bool ShardedClusterEngine::step() {
  if (!running_ || cursor_ >= end_) return false;
  const sim::SimTime t0 = cursor_;
  fire_actions_due(t0);

  // Clamp the epoch to the next timeline action so control changes
  // (attack on/off) always land exactly on a barrier.
  sim::SimTime t1 = sim::min(end_, t0 + config_.epoch);
  if (next_action_ < actions_.size()) {
    const sim::SimTime at = actions_[next_action_].at;
    if (at > t0 && at < t1) t1 = at;
  }

  snapshot_control_state();
  begin_epoch();
  schedule_probes(t0, t1);

  if (serving() && config_.serving.closed_loop) {
    // Closed-loop rounds within the epoch: issue every due client
    // request, run it to completion, and let the completions schedule
    // the follow-ups (think gaps, retry backoffs) — which may land
    // before the barrier and start another round. Round boundaries are
    // global, so results stay byte-identical at any shard count.
    const bool browning = brownout_.enabled();
    std::size_t round_lo = 0;
    for (;;) {
      issue_scratch_.clear();
      clients_.collect_due(t1, *zipf_, issue_scratch_);
      if (issue_scratch_.empty()) break;
      for (const ClientIssue& issue : issue_scratch_) {
        if (browning &&
            brownout_.should_shed(brownout_.class_of(issue.client))) {
          // Shed at issue, before routing: the request costs nothing
          // downstream. The client sees a shed (and may retry through
          // its backoff), the SLO charges it like any other shed.
          ++traffic_.requests;
          if (issue.is_read) {
            ++traffic_.reads;
          } else {
            ++traffic_.writes;
          }
          slo_->record_outcome(issue.at, OutcomeKind::kShed);
          ++brownout_shed_;
          ++epoch_brownout_shed_;
          ++shed_requests_;
          clients_.complete(issue.client, issue.at, OutcomeKind::kShed);
          continue;
        }
        const std::uint32_t r =
            push_request(issue.at, issue.key, issue.is_read);
        req_client_[r] = issue.client;
      }
      // A fully browned-out round emits nothing; the rescheduled
      // retries (strictly later — backoff base is positive) either land
      // before t1 and start another round or wait for the next epoch.
      if (ops_emitted_ > 0) run_waves(round_lo);
      settle_clients(round_lo);
      round_lo = req_arrival_.size();
    }
  } else {
    generate_and_route(t0, t1);
    if (ops_emitted_ > 0) run_waves(0);
  }
  barrier_control(t1);
  account_epoch_slo();
  if (serving()) {
    sample_epoch_depth(t1);
    if (brownout_.enabled()) {
      brownout_.update(req_arrival_.size() + epoch_brownout_shed_,
                       epoch_misses_, depth_timeline_.back().depth);
    }
  }
  cursor_ = t1;
  return cursor_ < end_;
}

void ShardedClusterEngine::run_waves(std::size_t first_req) {
  execute_wave();
  combine_wave0(first_req);
  while (!next_pending_.empty()) {
    pending_.swap(next_pending_);
    wave_lists_flipped_ = !wave_lists_flipped_;
    next_pending_.clear();
    execute_wave();
    combine_failover_wave();
  }
}

EngineReport ShardedClusterEngine::finish() {
  // Trailing actions (e.g. attack off after the last epoch), same
  // frontier rule as the serial runner.
  while (next_action_ < actions_.size() && actions_[next_action_].at < end_) {
    TimelineAction& action = actions_[next_action_++];
    if (action.fn) action.fn(sim::max(action.at, frontier_));
  }
  running_ = false;
  EngineReport report;
  report.traffic = traffic_;
  report.stats = stats_;
  report.max_node_depth = max_node_depth_;
  if (serving()) {
    ServingReport& s = report.serving;
    // Shard index order for determinism; untouched servers are all-zero.
    for (const auto& used : shard_used_) {
      for (const NodeId node : used) {
        const serving::NodeServerStats& st = servers_[node].stats();
        s.legs_submitted += st.submitted;
        s.legs_served += st.served;
        s.legs_failed += st.failed;
        s.legs_timed_out += st.timed_out;
        s.legs_shed += st.shed;
        s.legs_cancelled += st.cancelled;
        s.max_queue_depth = std::max(s.max_queue_depth, st.max_depth);
      }
    }
    s.shed_requests = shed_requests_;
    s.timed_out_requests = timed_out_requests_;
    s.error_requests = error_requests_;
    s.client_retries = config_.serving.closed_loop ? clients_.retries() : 0;
    s.retry_budget_spent = retry_budget_.spent();
    s.retry_budget_denied = retry_budget_.denied();
    s.brownout_shed = brownout_shed_;
    s.brownout_escalations = brownout_.escalations();
    const resilience::BreakerBankStats breaker_stats = breakers_.stats();
    s.breaker_opens = breaker_stats.opens + breaker_stats.reopens;
    s.breaker_short_circuits = breaker_stats.short_circuits;
    // Shard index order; bucket sums are order-independent anyway.
    for (const auto& hist : shard_qwait_) qwait_hist_.merge(hist);
    for (const auto& hist : shard_service_) service_hist_.merge(hist);
    s.queue_wait_p50_ms = qwait_hist_.quantile(0.50).millis();
    s.queue_wait_p99_ms = qwait_hist_.quantile(0.99).millis();
    s.service_p50_ms = service_hist_.quantile(0.50).millis();
    s.service_p99_ms = service_hist_.quantile(0.99).millis();
  }
  return report;
}

void ShardedClusterEngine::fire_actions_due(sim::SimTime now) {
  while (next_action_ < actions_.size() && actions_[next_action_].at <= now) {
    TimelineAction& action = actions_[next_action_++];
    if (action.fn) action.fn(sim::max(action.at, frontier_));
  }
}

void ShardedClusterEngine::snapshot_control_state() {
  const std::size_t n = devices_.size();
  const bool hedging = config_.balancer.hedge_threshold.ns() > 0;
  const bool breaking = serving() && breakers_.enabled();
  for (std::size_t i = 0; i < n; ++i) {
    rank_snap_[i] = health_rank(health_[i]);
    if (breaking &&
        breakers_.state(static_cast<NodeId>(i)) ==
            resilience::BreakerState::kOpen) {
      // An open breaker routes like a drained node: the router prefers
      // any other replica, and legs that still land here (all replicas
      // open) are short-circuited at execution.
      rank_snap_[i] = kDrainedRank;
    }
    if (hedging) {
      hot_snap_[i] =
          detectors_[i].recent_latency_s() > hedge_threshold_s_ ? 1 : 0;
    }
  }
}

void ShardedClusterEngine::begin_epoch() {
  req_arrival_.clear();
  req_lba_.clear();
  req_is_read_.clear();
  req_hedged_.clear();
  req_ok_.clear();
  req_complete_.clear();
  req_t_.clear();
  req_attempts_.clear();
  req_next_cand_.clear();
  req_ncand_.clear();
  req_nlegs_.clear();
  req_cand_.clear();
  req_fail_kind_.clear();
  req_client_.clear();
  req_hedge_cancel_.clear();
  leg_ok_.clear();
  leg_complete_.clear();
  leg_outcome_.clear();
  probe_node_.clear();
  probe_issue_.clear();
  probe_complete_.clear();
  probe_ok_.clear();
  pending_.clear();
  next_pending_.clear();
  std::fill(node_depth_.begin(), node_depth_.end(), 0);
  op_seq_ = 0;
  ops_emitted_ = 0;
  epoch_misses_ = 0;
  epoch_brownout_shed_ = 0;
}

void ShardedClusterEngine::emit(NodeId node, std::uint8_t kind,
                                std::uint32_t req, std::uint16_t leg,
                                sim::SimTime issue) {
  std::vector<Op>& ops = node_ops_[node];
  if (ops.empty()) shard_active_[node_shard_[node]].push_back(node);
  ops.push_back(Op{issue, op_seq_++, req, leg, kind});
  ++ops_emitted_;
  if (++node_depth_[node] > max_node_depth_) {
    max_node_depth_ = node_depth_[node];
  }
}

void ShardedClusterEngine::schedule_probes(sim::SimTime t0, sim::SimTime t1) {
  const std::size_t n = devices_.size();
  for (std::size_t id = 0; id < n; ++id) {
    if (health_[id] != NodeHealth::kDrained) continue;
    const sim::SimTime due = sim::max(next_probe_[id], t0);
    if (due >= t1) continue;
    ++stats_.probes;
    const auto p = static_cast<std::uint32_t>(probe_node_.size());
    probe_node_.push_back(static_cast<NodeId>(id));
    probe_issue_.push_back(due);
    probe_complete_.push_back(due);
    probe_ok_.push_back(0);
    emit(static_cast<NodeId>(id), kProbe, p, 0, due);
  }
}

void ShardedClusterEngine::generate_and_route(sim::SimTime t0,
                                              sim::SimTime t1) {
  (void)t0;
  while (next_arrival_ < t1) {
    const sim::SimTime arrival = next_arrival_;
    next_arrival_ = arrival + sim::Duration::from_seconds(
                                  rng_.exponential(mean_gap_s_));
    const std::uint64_t key = zipf_->next(rng_);
    const bool is_read = rng_.bernoulli(config_.traffic.read_fraction);
    push_request(arrival, key, is_read);
  }
}

std::uint32_t ShardedClusterEngine::push_request(sim::SimTime arrival,
                                                std::uint64_t key,
                                                bool is_read) {
  const auto r = static_cast<std::uint32_t>(req_arrival_.size());
  req_arrival_.push_back(arrival);
  req_lba_.push_back((mix64(key) % config_.balancer.objects) *
                     config_.balancer.object_sectors);
  req_is_read_.push_back(is_read ? 1 : 0);
  req_hedged_.push_back(0);
  req_ok_.push_back(0);
  req_complete_.push_back(arrival);
  req_t_.push_back(arrival);
  req_attempts_.push_back(0);
  req_next_cand_.push_back(0);
  req_ncand_.push_back(0);
  req_nlegs_.push_back(0);
  req_cand_.resize(req_cand_.size() + leg_stride_);
  leg_ok_.resize(leg_ok_.size() + leg_stride_, 0);
  leg_complete_.resize(leg_complete_.size() + leg_stride_,
                       sim::SimTime::zero());
  if (serving()) {
    req_fail_kind_.push_back(0);
    req_client_.push_back(0);
    req_hedge_cancel_.push_back(sim::SimTime::infinity());
    leg_outcome_.resize(leg_outcome_.size() + leg_stride_, 0);
  }

  ++traffic_.requests;
  placement_.replicas(key, replica_scratch_);
  refill_retry_tokens();
  if (is_read) {
    ++traffic_.reads;
    route_read(r);
  } else {
    ++traffic_.writes;
    route_write(r);
  }
  return r;
}

void ShardedClusterEngine::route_read(std::uint32_t r) {
  ++stats_.reads;
  // Stable three-bucket ordering against the epoch-start health
  // snapshot (healthy, degraded, drained; fail-static like the serial
  // balancer — a fully-drained set is still attempted).
  for (std::size_t i = 1; i < replica_scratch_.size(); ++i) {
    const NodeId id = replica_scratch_[i];
    const std::uint8_t rank = rank_snap_[id];
    std::size_t j = i;
    while (j > 0 && rank_snap_[replica_scratch_[j - 1]] > rank) {
      replica_scratch_[j] = replica_scratch_[j - 1];
      --j;
    }
    replica_scratch_[j] = id;
  }
  const std::size_t base = static_cast<std::size_t>(r) * leg_stride_;
  const auto ncand = static_cast<std::uint16_t>(replica_scratch_.size());
  for (std::size_t i = 0; i < replica_scratch_.size(); ++i) {
    req_cand_[base + i] = replica_scratch_[i];
  }
  req_ncand_[r] = ncand;

  const sim::SimTime arrival = req_arrival_[r];
  bool hedged = false;
  if (config_.balancer.hedge_threshold.ns() > 0 && ncand >= 2) {
    const NodeId primary = req_cand_[base];
    const NodeId backup = req_cand_[base + 1];
    hedged = hot_snap_[primary] != 0 && rank_snap_[backup] != kDrainedRank;
  }
  if (hedged) {
    ++stats_.hedged_reads;
    req_hedged_[r] = 1;
    if (serving()) {
      // Serving mode defers the backup leg to the next wave so its
      // submit can carry a cancel fuse derived from the primary's
      // outcome (a won hedge frees the loser's queue slot). Wave 0 runs
      // only the primary; combine_wave0 emits leg 1.
      req_attempts_[r] = 1;
      req_next_cand_[r] = 1;
      emit(req_cand_[base], kRead, r, 0, arrival);
      return;
    }
    req_attempts_[r] = 2;
    req_next_cand_[r] = 2;
    emit(req_cand_[base], kRead, r, 0, arrival);
    emit(req_cand_[base + 1], kRead, r, 1, arrival);
  } else {
    req_attempts_[r] = 1;
    req_next_cand_[r] = 1;
    emit(req_cand_[base], kRead, r, 0, arrival);
  }
}

void ShardedClusterEngine::route_write(std::uint32_t r) {
  ++stats_.writes;
  std::size_t in_rotation = 0;
  for (const NodeId id : replica_scratch_) {
    if (health_[id] != NodeHealth::kDrained) ++in_rotation;
  }
  // Skip drained replicas only while the in-rotation members can still
  // make quorum (fail-static on the write path, same as the balancer).
  const bool skip_drained = in_rotation >= write_quorum_;

  const sim::SimTime arrival = req_arrival_[r];
  std::uint16_t legs = 0;
  for (const NodeId id : replica_scratch_) {
    if (skip_drained && health_[id] == NodeHealth::kDrained) continue;
    emit(id, kWrite, r, legs++, arrival);
  }
  req_nlegs_[r] = legs;
}

void ShardedClusterEngine::execute_wave() {
  if (!pool_ || shard_count_ == 1 || ops_emitted_ < config_.min_ops_to_shard) {
    execute_nodes(0, shard_count_, 0);
  } else {
    pool_->run_indexed(shard_count_, wave_fn_);
  }
  for (const sim::SimTime f : shard_frontier_) {
    frontier_ = sim::max(frontier_, f);
  }
  ops_emitted_ = 0;
}

void ShardedClusterEngine::execute_nodes(std::size_t shard_lo,
                                         std::size_t shard_hi,
                                         std::size_t shard_slot) {
  sim::SimTime frontier = shard_frontier_[shard_slot];
  const std::span<std::byte> read_buf(shard_read_buf_[shard_slot]);
  const std::size_t object_bytes =
      static_cast<std::size_t>(config_.balancer.object_sectors) *
      storage::kBlockSectorSize;
  const std::size_t probe_bytes =
      static_cast<std::size_t>(config_.balancer.probe_sectors) *
      storage::kBlockSectorSize;

  // Only nodes this wave actually touched: at 10k nodes a closed-loop
  // round emits to a handful of them, and a full-range scan would cost
  // more than the I/O. Per-node results land in owner-exclusive slots,
  // so list order (first-emission order) does not affect output.
  const bool serve = serving();
  for (std::size_t s = shard_lo; s < shard_hi; ++s) {
    std::vector<NodeId>& active = shard_active_[s];
    for (std::size_t ai = 0; ai < active.size(); ++ai) {
      const NodeId node = active[ai];
      if (serve && ai + 1 < active.size()) {
        // Hide the next server's cold-miss latency behind this node's
        // work: rounds touch a handful of servers scattered across a
        // multi-megabyte fleet, so nearly every touch misses.
        __builtin_prefetch(&servers_[active[ai + 1]]);
      }
      std::vector<Op>& ops = node_ops_[node];
      // The device is synchronous virtual-time state: ops must hit it in
      // the canonical (issue, seq) order so results are independent of
      // which wave/shard produced them.
      if (ops.size() > 1) {
        std::sort(ops.begin(), ops.end(), [](const Op& a, const Op& b) {
          return a.issue == b.issue ? a.seq < b.seq : a.issue < b.issue;
        });
      }
      storage::BlockDevice& device = *devices_[node];
      core::AttackDetector& detector = detectors_[node];
      // Chaos crash: the node answers nothing. Legs fail instantly (the
      // connection refuses), feeding the detector exactly like a device
      // error; probes fail so a drained crashed node stays drained.
      // chaos_down_ only mutates at barriers, so the flag is stable for
      // the whole wave.
      const bool crashed = chaos_down_[node] > 0;
      if (serving()) {
        // Serving pipeline: legs are submitted in canonical order, the
        // queue drains them through admission/deadline/device, and the
        // completion ring is consumed in bulk into the leg arrays and
        // detector. Probes still bypass the queue — a health check must
        // not skew the serving stats, and must not be shed by overload.
        serving::NodeServer& server = servers_[node];
        const bool breaking = breakers_.enabled();
        bool submitted = false;
        for (const Op& op : ops) {
          if (op.kind == kProbe) {
            if (crashed) {
              probe_ok_[op.req] = 0;
              probe_complete_[op.req] = op.issue;
              frontier = sim::max(frontier, op.issue);
              continue;
            }
            const storage::BlockIo io =
                device.read(op.issue, 0, config_.balancer.probe_sectors,
                            read_buf.first(probe_bytes));
            probe_ok_[op.req] = io.ok() ? 1 : 0;
            probe_complete_[op.req] = io.complete;
            frontier = sim::max(frontier, io.complete);
            continue;
          }
          const std::uint64_t slot =
              static_cast<std::uint64_t>(op.req) * leg_stride_ + op.leg;
          if (crashed) {
            detector.record_error(op.issue);
            ++node_errors_[node];
            leg_ok_[slot] = 0;
            leg_complete_[slot] = op.issue;
            leg_outcome_[slot] =
                static_cast<std::uint8_t>(OutcomeKind::kFailed);
            frontier = sim::max(frontier, op.issue);
            continue;
          }
          if (breaking && !breakers_.allow(s, node)) {
            // Short-circuit: the breaker refuses the leg without
            // touching the server or the detector — the whole point is
            // to stop spending queue slots on a node that keeps failing.
            leg_ok_[slot] = 0;
            leg_complete_[slot] = op.issue;
            leg_outcome_[slot] = static_cast<std::uint8_t>(OutcomeKind::kShed);
            frontier = sim::max(frontier, op.issue);
            continue;
          }
          if (op.kind == kWrite) {
            ++node_writes_[node];
            server.submit(op.issue, storage::DiskOpKind::kWrite,
                          req_lba_[op.req], config_.balancer.object_sectors,
                          write_buf_, {}, deadline_of(op.req), slot);
          } else {
            ++node_reads_[node];
            // A deferred hedge backup carries its cancel fuse (the
            // primary's winning completion time); everything else never
            // cancels.
            const sim::SimTime cancel_at =
                op.leg == 1 ? req_hedge_cancel_[op.req]
                            : sim::SimTime::infinity();
            server.submit(op.issue, storage::DiskOpKind::kRead,
                          req_lba_[op.req], config_.balancer.object_sectors,
                          {}, read_buf.first(object_bytes),
                          deadline_of(op.req), slot, cancel_at);
          }
          submitted = true;
        }
        if (submitted) {
          if (!depth_dirty_[node]) {
            depth_dirty_[node] = 1;
            shard_depth_dirty_[s].push_back(node);
          }
          if (!server_used_[node]) {
            server_used_[node] = 1;
            shard_used_[s].push_back(node);
          }
        }
        frontier = sim::max(frontier, server.drain());
        for (const serving::ServeResult& res : server.completions()) {
          record_serving_result(node, s, res);
        }
        server.clear_completions();
        ops.clear();
        continue;
      }
      for (const Op& op : ops) {
        if (crashed) {
          if (op.kind == kProbe) {
            probe_ok_[op.req] = 0;
            probe_complete_[op.req] = op.issue;
          } else {
            detector.record_error(op.issue);
            ++node_errors_[node];
            const std::size_t slot =
                static_cast<std::size_t>(op.req) * leg_stride_ + op.leg;
            leg_ok_[slot] = 0;
            leg_complete_[slot] = op.issue;
          }
          frontier = sim::max(frontier, op.issue);
          continue;
        }
        storage::BlockIo io;
        if (op.kind == kWrite) {
          ++node_writes_[node];
          io = device.write(op.issue, req_lba_[op.req],
                            config_.balancer.object_sectors, write_buf_);
        } else if (op.kind == kRead) {
          ++node_reads_[node];
          io = device.read(op.issue, req_lba_[op.req],
                           config_.balancer.object_sectors,
                           read_buf.first(object_bytes));
        } else {
          // Probe the raw device without feeding the detector: health
          // checks must not skew serving stats (matches Balancer).
          io = device.read(op.issue, 0, config_.balancer.probe_sectors,
                           read_buf.first(probe_bytes));
        }
        if (op.kind == kProbe) {
          probe_ok_[op.req] = io.ok() ? 1 : 0;
          probe_complete_[op.req] = io.complete;
        } else {
          if (io.ok()) {
            detector.record_ok(io.complete,
                               (io.complete - op.issue).seconds());
          } else {
            detector.record_error(io.complete);
            ++node_errors_[node];
          }
          const std::size_t slot =
              static_cast<std::size_t>(op.req) * leg_stride_ + op.leg;
          leg_ok_[slot] = io.ok() ? 1 : 0;
          leg_complete_[slot] = io.complete;
        }
        frontier = sim::max(frontier, io.complete);
      }
      ops.clear();
    }
    active.clear();
  }
  shard_frontier_[shard_slot] = frontier;
}

void ShardedClusterEngine::record_serving_result(
    NodeId node, std::size_t shard, const serving::ServeResult& result) {
  // Runs on the shard that owns `node` during its drain: every array it
  // touches (leg slots of this node's ops, detector, shard histograms)
  // is owner-exclusive, and the merge order downstream is fixed.
  const auto slot = static_cast<std::size_t>(result.tag);
  leg_ok_[slot] = result.outcome == OutcomeKind::kServed ? 1 : 0;
  leg_complete_[slot] = result.complete;
  leg_outcome_[slot] = static_cast<std::uint8_t>(result.outcome);
  switch (result.outcome) {
    case OutcomeKind::kServed:
      // The detector watches the drive, so feed it device service time
      // (start -> complete), the same signal immediate mode feeds —
      // drain decisions must not shift just because queueing is modeled.
      detectors_[node].record_ok(
          result.complete, (result.complete - result.service_start).seconds());
      shard_qwait_[shard].add(result.service_start - result.arrival);
      shard_service_[shard].add(result.complete - result.service_start);
      break;
    case OutcomeKind::kFailed:
      detectors_[node].record_error(result.complete);
      ++node_errors_[node];
      shard_qwait_[shard].add(result.service_start - result.arrival);
      shard_service_[shard].add(result.complete - result.service_start);
      break;
    case OutcomeKind::kTimedOut:
      // Spent its whole life in line: all queue wait, no service.
      shard_qwait_[shard].add(result.complete - result.arrival);
      break;
    case OutcomeKind::kShed:
      break;
    case OutcomeKind::kCancelled:
      // A hedge leg its sibling already won: not a health signal, not a
      // latency sample — it only frees the queue slot.
      break;
  }
  if (breakers_.enabled()) {
    // Served = success; device error or in-queue expiry = failure (both
    // mean the node is not delivering within the deadline). Sheds and
    // cancels say nothing about the node itself.
    if (result.outcome == OutcomeKind::kServed) {
      breakers_.record(shard, node, true);
    } else if (result.outcome == OutcomeKind::kFailed ||
               result.outcome == OutcomeKind::kTimedOut) {
      breakers_.record(shard, node, false);
    }
  }
}

void ShardedClusterEngine::note_fail_kind(std::uint32_t r,
                                          std::uint8_t slot_outcome) {
  // OutcomeKind values are ordered by classification priority
  // (shed > timed out > failed), so "dominant cause" is just max.
  // kCancelled sits above kShed numerically but is *not* a failure
  // cause — a cancelled hedge leg means the sibling won — so it never
  // participates in the classification.
  if (slot_outcome == static_cast<std::uint8_t>(OutcomeKind::kCancelled)) {
    return;
  }
  if (slot_outcome > req_fail_kind_[r]) req_fail_kind_[r] = slot_outcome;
}

OutcomeKind ShardedClusterEngine::request_outcome(std::uint32_t r) const {
  if (req_ok_[r] != 0) return OutcomeKind::kServed;
  const std::uint8_t kind = req_fail_kind_[r];
  return kind == 0 ? OutcomeKind::kFailed : static_cast<OutcomeKind>(kind);
}

void ShardedClusterEngine::settle_clients(std::size_t first_req) {
  const std::size_t nreq = req_arrival_.size();
  for (std::size_t r = first_req; r < nreq; ++r) {
    clients_.complete(req_client_[r], req_complete_[r],
                      request_outcome(static_cast<std::uint32_t>(r)));
  }
}

void ShardedClusterEngine::sample_epoch_depth(sim::SimTime t1) {
  // Only servers that saw a submit this epoch (or still carry backlog)
  // can have a nonzero epoch max: an idle server's take resets its
  // high-water to its (zero) depth and nothing moves it after that. At
  // 10k nodes the full scan would dwarf the epoch's actual work.
  std::uint64_t depth = 0;
  for (auto& dirty : shard_depth_dirty_) {
    std::size_t keep = 0;
    for (const NodeId node : dirty) {
      serving::NodeServer& server = servers_[node];
      depth = std::max(depth, server.take_epoch_max_depth());
      if (server.depth() > 0) {
        dirty[keep++] = node;  // backlog carries into the next epoch
      } else {
        depth_dirty_[node] = 0;
      }
    }
    dirty.resize(keep);
  }
  depth_timeline_.push_back(DepthSample{t1, depth});
}

void ShardedClusterEngine::fail_read(std::uint32_t r) {
  ++stats_.failed_reads;
  req_ok_[r] = 0;
  req_complete_[r] = sim::min(req_t_[r], deadline_of(r));
}

void ShardedClusterEngine::try_emit_failover(std::uint32_t r) {
  const std::uint16_t i = req_next_cand_[r];
  if (i >= req_ncand_[r] || req_t_[r] >= deadline_of(r)) {
    fail_read(r);
    return;
  }
  if (req_attempts_[r] > 0 && !spend_retry_token()) {
    ++stats_.retries_denied;
    fail_read(r);
    return;
  }
  const NodeId node = req_cand_[static_cast<std::size_t>(r) * leg_stride_ + i];
  req_next_cand_[r] = i + 1;
  ++req_attempts_[r];
  emit(node, kRead, r, 0, req_t_[r]);
  next_pending_.push_back(r);
}

void ShardedClusterEngine::combine_wave0(std::size_t first_req) {
  const std::size_t nreq = req_arrival_.size();
  const bool classify = serving();
  for (std::uint32_t r = static_cast<std::uint32_t>(first_req); r < nreq;
       ++r) {
    if (!req_is_read_[r]) {
      combine_write(r);
      continue;
    }
    const sim::SimTime deadline = deadline_of(r);
    const std::size_t base = static_cast<std::size_t>(r) * leg_stride_;
    if (req_hedged_[r]) {
      if (classify) {
        // Deferred backup leg: the primary has run, so the cancel fuse
        // is known — a timely primary win cancels the backup the moment
        // it would be pointless, a primary miss lets it run clean. The
        // backup still *issues* at arrival (the hedger did not wait for
        // the primary verdict; the engine merely learned it first), so
        // its queueing starts where a real hedge's would.
        const bool k0 = leg_ok_[base] != 0;
        const sim::SimTime c0 = leg_complete_[base];
        req_hedge_cancel_[r] = k0 && c0 <= deadline
                                   ? c0
                                   : sim::SimTime::infinity();
        req_attempts_[r] = 2;
        req_next_cand_[r] = 2;
        emit(req_cand_[base + 1], kRead, r, 1, req_arrival_[r]);
        next_pending_.push_back(r);
        continue;
      }
      const bool k0 = leg_ok_[base] != 0;
      const bool k1 = leg_ok_[base + 1] != 0;
      const sim::SimTime c0 = leg_complete_[base];
      const sim::SimTime c1 = leg_complete_[base + 1];
      const bool ok0 = k0 && c0 <= deadline;
      const bool ok1 = k1 && c1 <= deadline;
      if (ok0 || ok1) {
        req_ok_[r] = 1;
        req_complete_[r] = ok0 && (!ok1 || c0 <= c1) ? c0 : c1;
        if (!ok0 || (ok1 && c1 < c0)) ++stats_.hedge_wins;
        continue;
      }
      if ((k0 && c0 > deadline) || (k1 && c1 > deadline)) {
        ++stats_.deadline_misses;
      }
      if (classify) {
        note_fail_kind(r, k0 ? static_cast<std::uint8_t>(OutcomeKind::kTimedOut)
                             : leg_outcome_[base]);
        note_fail_kind(r, k1 ? static_cast<std::uint8_t>(OutcomeKind::kTimedOut)
                             : leg_outcome_[base + 1]);
      }
      // Both hedge legs failed: fail over from the third replica,
      // starting when the earlier leg reported.
      req_t_[r] = sim::min(c0, c1);
      try_emit_failover(r);
      continue;
    }
    const bool k0 = leg_ok_[base] != 0;
    const sim::SimTime c0 = leg_complete_[base];
    if (k0 && c0 <= deadline) {
      req_ok_[r] = 1;
      req_complete_[r] = c0;
    } else if (k0) {
      // The data arrived late; any retry would start later still.
      ++stats_.deadline_misses;
      if (classify) {
        note_fail_kind(r, static_cast<std::uint8_t>(OutcomeKind::kTimedOut));
      }
      fail_read(r);
    } else {
      if (classify) note_fail_kind(r, leg_outcome_[base]);
      req_t_[r] = c0;
      try_emit_failover(r);
    }
  }
}

void ShardedClusterEngine::combine_failover_wave() {
  const bool classify = serving();
  for (const std::uint32_t r : pending_) {
    const sim::SimTime deadline = deadline_of(r);
    const std::size_t base = static_cast<std::size_t>(r) * leg_stride_;
    if (classify && req_hedged_[r] == 1) {
      // Deferred hedge: both legs have now run — the same two-leg
      // combine immediate mode does in wave 0. Mark the hedge settled
      // so a further failover of this request takes the single-leg path.
      req_hedged_[r] = 2;
      const bool k0 = leg_ok_[base] != 0;
      const bool k1 = leg_ok_[base + 1] != 0;
      const sim::SimTime c0 = leg_complete_[base];
      const sim::SimTime c1 = leg_complete_[base + 1];
      const bool ok0 = k0 && c0 <= deadline;
      const bool ok1 = k1 && c1 <= deadline;
      if (ok0 || ok1) {
        req_ok_[r] = 1;
        req_complete_[r] = ok0 && (!ok1 || c0 <= c1) ? c0 : c1;
        if (!ok0 || (ok1 && c1 < c0)) ++stats_.hedge_wins;
        continue;
      }
      if ((k0 && c0 > deadline) || (k1 && c1 > deadline)) {
        ++stats_.deadline_misses;
      }
      note_fail_kind(r, k0 ? static_cast<std::uint8_t>(OutcomeKind::kTimedOut)
                           : leg_outcome_[base]);
      note_fail_kind(r, k1 ? static_cast<std::uint8_t>(OutcomeKind::kTimedOut)
                           : leg_outcome_[base + 1]);
      req_t_[r] = sim::min(c0, c1);
      try_emit_failover(r);
      continue;
    }
    const bool ok = leg_ok_[base] != 0;
    const sim::SimTime complete = leg_complete_[base];
    if (ok && complete <= deadline) {
      req_ok_[r] = 1;
      req_complete_[r] = complete;
      if (req_attempts_[r] > 1) ++stats_.read_failovers;
    } else if (ok) {
      ++stats_.deadline_misses;
      if (classify) {
        note_fail_kind(r, static_cast<std::uint8_t>(OutcomeKind::kTimedOut));
      }
      fail_read(r);
    } else {
      if (classify) note_fail_kind(r, leg_outcome_[base]);
      req_t_[r] = complete;
      try_emit_failover(r);
    }
  }
}

void ShardedClusterEngine::combine_write(std::uint32_t r) {
  const sim::SimTime deadline = deadline_of(r);
  const std::size_t base = static_cast<std::size_t>(r) * leg_stride_;
  std::vector<sim::SimTime>& acks = ack_scratch_;
  acks.clear();
  sim::SimTime latest = req_arrival_[r];
  const bool classify = serving();
  for (std::uint16_t leg = 0; leg < req_nlegs_[r]; ++leg) {
    const bool ok = leg_ok_[base + leg] != 0;
    const sim::SimTime complete = leg_complete_[base + leg];
    if (ok && complete <= deadline) {
      acks.push_back(complete);
    } else if (ok) {
      ++stats_.deadline_misses;
      if (classify) {
        note_fail_kind(r, static_cast<std::uint8_t>(OutcomeKind::kTimedOut));
      }
    } else if (classify) {
      note_fail_kind(r, leg_outcome_[base + leg]);
    }
    latest = sim::max(latest, sim::min(complete, deadline));
  }
  if (acks.size() >= write_quorum_) {
    std::sort(acks.begin(), acks.end());
    req_ok_[r] = 1;
    req_complete_[r] = acks[write_quorum_ - 1];
    return;
  }
  ++stats_.quorum_losses;
  ++stats_.failed_writes;
  req_ok_[r] = 0;
  req_complete_[r] = latest;
}

void ShardedClusterEngine::barrier_control(sim::SimTime t1) {
  // Probe results first: a node readmitted this epoch must not be
  // re-drained by the alert its probe just acknowledged.
  const std::size_t nprobes = probe_node_.size();
  for (std::size_t p = 0; p < nprobes; ++p) {
    const NodeId id = probe_node_[p];
    if (probe_ok_[p] != 0 && (probe_complete_[p] - probe_issue_[p]) <=
                                 config_.balancer.probe_ok_latency) {
      health_[id] = NodeHealth::kHealthy;
      next_probe_[id] = sim::SimTime::infinity();
      detectors_[id].acknowledge();
      ++stats_.readmits;
    } else {
      next_probe_[id] = probe_issue_[p] + config_.balancer.probe_interval;
    }
  }
  // Detector -> health control action (the drain/degrade half of the
  // Balancer's react()), applied once per barrier. Chaos flap windows
  // override the detector verdict: kForceDown drains a healthy node as
  // if a (false-positive) alert fired, kSuppress swallows real alerts
  // (false negative) so traffic keeps hitting the sick node.
  const std::size_t n = devices_.size();
  for (std::size_t id = 0; id < n; ++id) {
    const auto flap = static_cast<resilience::ChaosFlapMode>(chaos_flap_[id]);
    if (flap == resilience::ChaosFlapMode::kForceDown) {
      if (health_[id] == NodeHealth::kHealthy) {
        health_[id] = NodeHealth::kDrained;
        ++stats_.drains;
        next_probe_[id] = t1 + config_.balancer.probe_interval;
      }
      continue;
    }
    if (!detectors_[id].alerted()) continue;
    if (flap == resilience::ChaosFlapMode::kSuppress) continue;
    if (health_[id] != NodeHealth::kHealthy) continue;
    if (config_.balancer.auto_drain) {
      health_[id] = NodeHealth::kDrained;
      ++stats_.drains;
      next_probe_[id] =
          detectors_[id].alert_time() + config_.balancer.probe_interval;
    } else {
      health_[id] = NodeHealth::kDegraded;
      ++stats_.degrades;
    }
  }
  // Breaker transitions happen only here, at the single-threaded
  // barrier: wave shards record outcomes into owner-exclusive epoch
  // counters, and this settles them into open/half-open/closed state.
  if (breakers_.enabled()) breakers_.update(t1);
}

void ShardedClusterEngine::account_epoch_slo() {
  const std::size_t nreq = req_arrival_.size();
  if (!serving()) {
    for (std::size_t r = 0; r < nreq; ++r) {
      if (req_ok_[r] != 0) {
        slo_->record_success(req_arrival_[r],
                             req_complete_[r] - req_arrival_[r]);
      } else {
        slo_->record_failure(req_arrival_[r]);
      }
    }
    return;
  }
  for (std::size_t r = 0; r < nreq; ++r) {
    const OutcomeKind outcome =
        request_outcome(static_cast<std::uint32_t>(r));
    slo_->record_outcome(req_arrival_[r], outcome,
                         req_complete_[r] - req_arrival_[r]);
    switch (outcome) {
      case OutcomeKind::kServed: break;
      case OutcomeKind::kFailed: ++error_requests_; break;
      case OutcomeKind::kTimedOut:
        ++timed_out_requests_;
        ++epoch_misses_;  // feeds the brownout deadline-miss EWMA
        break;
      case OutcomeKind::kShed: ++shed_requests_; break;
      case OutcomeKind::kCancelled: break;  // unreachable for requests
    }
  }
}

void ShardedClusterEngine::chaos_touch(NodeId node) {
  if (chaos_touched_[node]) return;
  chaos_touched_[node] = 1;
  chaos_touched_list_.push_back(node);
}

void ShardedClusterEngine::chaos_node_down(NodeId node, bool down) {
  chaos_touch(node);
  // A counter, not a flag: overlapping crash windows from independent
  // schedules compose — the node recovers when the last window closes.
  if (down) {
    ++chaos_down_[node];
  } else if (chaos_down_[node] > 0) {
    --chaos_down_[node];
  }
}

void ShardedClusterEngine::chaos_set_flap(NodeId node,
                                          resilience::ChaosFlapMode mode) {
  chaos_touch(node);
  chaos_flap_[node] = static_cast<std::uint8_t>(mode);
}

void ShardedClusterEngine::chaos_set_service_scale(NodeId node, double scale) {
  chaos_touch(node);
  if (serving()) servers_[node].set_service_scale(scale);
}

}  // namespace deepnote::cluster
