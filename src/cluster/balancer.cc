#include "cluster/balancer.h"

#include <algorithm>
#include <stdexcept>

namespace deepnote::cluster {

namespace {

int health_rank(NodeHealth health) {
  switch (health) {
    case NodeHealth::kHealthy: return 0;
    case NodeHealth::kDegraded: return 1;
    case NodeHealth::kDrained: return 2;
  }
  return 3;
}

}  // namespace

Balancer::Balancer(ClusterTopology topology, std::vector<ClusterNode*> nodes,
                   BalancerConfig config)
    : topology_(topology),
      nodes_(std::move(nodes)),
      config_(config),
      placement_(topology, config.policy, config.replication),
      write_quorum_(config.write_quorum != 0 ? config.write_quorum
                                             : config.replication / 2 + 1),
      retry_tokens_(config.retry_budget_cap) {
  if (nodes_.size() != topology_.nodes()) {
    throw std::invalid_argument("balancer: node list does not match topology");
  }
  if (write_quorum_ > config_.replication) {
    throw std::invalid_argument("balancer: write quorum exceeds replication");
  }
  if (config_.objects == 0 || config_.object_sectors == 0) {
    throw std::invalid_argument("balancer: empty object space");
  }
  for (ClusterNode* node : nodes_) {
    if (config_.objects * config_.object_sectors >
        node->device().total_sectors()) {
      throw std::invalid_argument("balancer: object space exceeds a device");
    }
  }
  next_probe_.assign(nodes_.size(), sim::SimTime::zero());
  probe_scratch_.resize(static_cast<std::size_t>(config_.probe_sectors) *
                        storage::kBlockSectorSize);
}

Balancer::Balancer(Cluster& cluster, BalancerConfig config)
    : Balancer(cluster.topology(), cluster.node_pointers(), config) {}

std::uint64_t Balancer::lba_of(std::uint64_t key) const {
  return (mix64(key) % config_.objects) * config_.object_sectors;
}

void Balancer::rank_candidates(std::vector<NodeId>& replicas) const {
  // Stable three-bucket ordering (healthy, degraded, drained). Replica
  // sets are tiny (R <= pods), so an insertion pass beats stable_sort —
  // and unlike stable_sort it never touches the heap on the request path.
  for (std::size_t i = 1; i < replicas.size(); ++i) {
    const NodeId id = replicas[i];
    const int rank = health_rank(nodes_[id]->health());
    std::size_t j = i;
    while (j > 0 && health_rank(nodes_[replicas[j - 1]]->health()) > rank) {
      replicas[j] = replicas[j - 1];
      --j;
    }
    replicas[j] = id;
  }
}

bool Balancer::spend_retry_token() {
  if (retry_tokens_ < 1.0) return false;
  retry_tokens_ -= 1.0;
  return true;
}

void Balancer::react(ClusterNode& node, sim::SimTime when) {
  if (!node.detector().alerted()) return;
  if (node.health() != NodeHealth::kHealthy) return;
  if (config_.auto_drain) {
    node.drain(when);
    ++stats_.drains;
    next_probe_[node.id()] = when + config_.probe_interval;
  } else {
    node.mark_degraded(when);
    ++stats_.degrades;
  }
}

RequestOutcome Balancer::read(sim::SimTime now, std::uint64_t key,
                              std::span<std::byte> out) {
  ++stats_.reads;
  retry_tokens_ = std::min(config_.retry_budget_cap,
                           retry_tokens_ + config_.retry_budget_ratio);
  placement_.replicas(key, replica_scratch_);
  rank_candidates(replica_scratch_);
  const std::uint64_t lba = lba_of(key);
  const sim::SimTime deadline = now + config_.request_deadline;

  RequestOutcome outcome;
  sim::SimTime t = now;
  std::size_t next_candidate = 0;

  // Hedge the first attempt when the chosen node is running hot.
  if (config_.hedge_threshold.ns() > 0 && replica_scratch_.size() >= 2) {
    ClusterNode& primary = *nodes_[replica_scratch_[0]];
    ClusterNode& backup = *nodes_[replica_scratch_[1]];
    const bool primary_hot =
        primary.detector().recent_latency_s() >
        config_.hedge_threshold.seconds();
    if (primary_hot && backup.health() != NodeHealth::kDrained) {
      ++stats_.hedged_reads;
      outcome.hedged = true;
      const storage::BlockIo io0 =
          primary.read(t, lba, config_.object_sectors, out);
      react(primary, io0.complete);
      const storage::BlockIo io1 =
          backup.read(t, lba, config_.object_sectors, out);
      react(backup, io1.complete);
      const bool ok0 = io0.ok() && io0.complete <= deadline;
      const bool ok1 = io1.ok() && io1.complete <= deadline;
      outcome.attempts = 2;
      if (ok0 || ok1) {
        outcome.ok = true;
        outcome.complete = ok0 && (!ok1 || io0.complete <= io1.complete)
                               ? io0.complete
                               : io1.complete;
        if (!ok0 || (ok1 && io1.complete < io0.complete)) ++stats_.hedge_wins;
        return outcome;
      }
      if ((io0.ok() && io0.complete > deadline) ||
          (io1.ok() && io1.complete > deadline)) {
        ++stats_.deadline_misses;
      }
      // Both hedge legs failed: keep failing over from the third replica,
      // starting when the earlier leg reported.
      t = sim::min(io0.complete, io1.complete);
      next_candidate = 2;
    }
  }

  for (std::size_t i = next_candidate; i < replica_scratch_.size(); ++i) {
    if (t >= deadline) break;
    if (outcome.attempts > 0 && !spend_retry_token()) {
      ++stats_.retries_denied;
      break;
    }
    ClusterNode& node = *nodes_[replica_scratch_[i]];
    const storage::BlockIo io = node.read(t, lba, config_.object_sectors, out);
    ++outcome.attempts;
    react(node, io.complete);
    if (io.ok()) {
      if (io.complete <= deadline) {
        outcome.ok = true;
        outcome.complete = io.complete;
        if (outcome.attempts > 1) ++stats_.read_failovers;
        return outcome;
      }
      ++stats_.deadline_misses;
      break;  // the data arrived late; any retry would start later still
    }
    t = io.complete;
  }
  ++stats_.failed_reads;
  outcome.complete = sim::min(t, deadline);
  return outcome;
}

RequestOutcome Balancer::write(sim::SimTime now, std::uint64_t key,
                               std::span<const std::byte> in) {
  ++stats_.writes;
  retry_tokens_ = std::min(config_.retry_budget_cap,
                           retry_tokens_ + config_.retry_budget_ratio);
  placement_.replicas(key, replica_scratch_);
  const std::uint64_t lba = lba_of(key);
  const sim::SimTime deadline = now + config_.request_deadline;

  std::size_t in_rotation = 0;
  for (NodeId id : replica_scratch_) {
    if (nodes_[id]->health() != NodeHealth::kDrained) ++in_rotation;
  }
  // Skip drained replicas only while the in-rotation members can still
  // make quorum; otherwise write through the drain (fail-static on the
  // write path: a transiently mis-drained node can still ack, and a
  // genuinely dead one fails the command and proves the loss).
  const bool skip_drained = in_rotation >= write_quorum_;

  RequestOutcome outcome;
  std::vector<sim::SimTime>& acks = ack_scratch_;
  acks.clear();
  sim::SimTime latest = now;
  for (NodeId id : replica_scratch_) {
    ClusterNode& node = *nodes_[id];
    if (skip_drained && node.health() == NodeHealth::kDrained) continue;
    const storage::BlockIo io =
        node.write(now, lba, config_.object_sectors, in);
    ++outcome.attempts;
    react(node, io.complete);
    if (io.ok() && io.complete <= deadline) {
      acks.push_back(io.complete);
    } else if (io.ok()) {
      ++stats_.deadline_misses;
    }
    latest = sim::max(latest, sim::min(io.complete, deadline));
  }
  if (acks.size() >= write_quorum_) {
    std::sort(acks.begin(), acks.end());
    outcome.ok = true;
    outcome.complete = acks[write_quorum_ - 1];
    return outcome;
  }
  ++stats_.quorum_losses;
  ++stats_.failed_writes;
  outcome.complete = latest;
  return outcome;
}

void Balancer::run_probes(sim::SimTime now) {
  for (std::size_t id = 0; id < nodes_.size(); ++id) {
    ClusterNode& node = *nodes_[id];
    if (node.health() != NodeHealth::kDrained) continue;
    if (now < next_probe_[id]) continue;
    ++stats_.probes;
    // Probe the raw device: health checks must not skew serving stats.
    const storage::BlockIo io =
        node.device().read(now, 0, config_.probe_sectors, probe_scratch_);
    if (io.ok() && (io.complete - now) <= config_.probe_ok_latency) {
      node.readmit(io.complete);
      ++stats_.readmits;
    } else {
      next_probe_[id] = now + config_.probe_interval;
    }
  }
}

}  // namespace deepnote::cluster
