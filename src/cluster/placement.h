// R-way replicated object placement over a pod/bay topology.
//
// Shahrad et al. (arXiv:1712.07816) showed acoustic attacks break the
// independent-failure assumption RAID relies on: every drive sharing the
// insonified enclosure fails together. Placement is where a cluster
// decides how much of that correlated blast radius a replica set spans:
//
//  * kSamePod   — every replica set packed into pod 0 (the dense layout
//                 a capacity-first operator ships; all replicas share
//                 one enclosure and die together).
//  * kCrossPod  — replicas land in R distinct pods, bays hashed; one
//                 insonified pod costs each object at most one replica.
//  * kRackAware — distinct pods AND far-wall bays: bays nearer the
//                 incident wall see more excitation (core/rack.h), so
//                 the placer prefers the acoustically quiet half of
//                 each tower.
//
// Placement is a pure function of (key, topology, policy, replication):
// no state, no rebalancing, deterministic on every platform.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace deepnote::cluster {

using NodeId = std::uint32_t;

enum class PlacementPolicy {
  kSamePod,
  kCrossPod,
  kRackAware,
};

const char* placement_name(PlacementPolicy policy);

/// splitmix64 finalizer: the key-hash used by placement and the object
/// address map. Stable across platforms.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

struct ClusterTopology {
  std::size_t pods = 3;
  std::size_t bays_per_pod = 5;

  std::size_t nodes() const { return pods * bays_per_pod; }
  NodeId node_id(std::size_t pod, std::size_t bay) const {
    return static_cast<NodeId>(pod * bays_per_pod + bay);
  }
  std::size_t pod_of(NodeId id) const { return id / bays_per_pod; }
  std::size_t bay_of(NodeId id) const { return id % bays_per_pod; }
};

class PlacementMap {
 public:
  /// Throws std::invalid_argument when the topology cannot host
  /// `replication` distinct replicas under `policy` (same-pod needs
  /// replication <= bays_per_pod, the spreading policies need
  /// replication <= pods).
  PlacementMap(ClusterTopology topology, PlacementPolicy policy,
               std::size_t replication);

  const ClusterTopology& topology() const { return topology_; }
  PlacementPolicy policy() const { return policy_; }
  std::size_t replication() const { return replication_; }

  /// Replica node ids for `key`, primary first. `out` is reused.
  void replicas(std::uint64_t key, std::vector<NodeId>& out) const;
  std::vector<NodeId> replicas(std::uint64_t key) const;

 private:
  ClusterTopology topology_;
  PlacementPolicy policy_;
  std::size_t replication_;
};

}  // namespace deepnote::cluster
