// Open-loop traffic generation for the cluster: Poisson arrivals from
// independent client streams, Zipf object popularity, a fixed read/write
// mix, and a timeline of scheduled actions (attack on / attack off).
//
// Open-loop matters for availability numbers: real clients do not slow
// down because the storage got slow, so load keeps arriving at the
// configured rate while drives hang — exactly the regime where a parked
// pod turns into failed requests instead of a quietly longer queue.
//
// Determinism: each client owns a forked RNG stream and its own next
// arrival time; the runner merges streams by (time, client index). The
// same seed produces the same request sequence regardless of how trials
// are scheduled across worker threads.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cluster/balancer.h"
#include "cluster/resilience/retry.h"
#include "cluster/slo.h"
#include "sim/rng.h"
#include "sim/timer_wheel.h"

namespace deepnote::cluster {

/// YCSB-style approximate Zipf rank generator over [0, n). Rank 0 is the
/// hottest key; placement's key hash scatters ranks across nodes.
class ZipfGenerator {
 public:
  ZipfGenerator(std::uint64_t n, double theta);

  std::uint64_t next(sim::Rng& rng) const;
  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  std::uint64_t n_;
  double theta_;
  double zetan_;
  double zeta2_;
  double alpha_;
  double eta_;
};

/// Exact Zipf rank sampler via Vose's alias method: O(n) build, O(1)
/// per sample (one table lookup + one biased coin), no per-sample
/// normalization. At millions of keys this is what makes batch traffic
/// generation cheap enough to disappear next to the drive model; it is
/// also *exact* — each rank r is drawn with probability
/// (r+1)^-theta / zeta(n, theta) — where ZipfGenerator is the YCSB
/// approximation. Deterministic: the table depends only on (n, theta)
/// and each sample consumes exactly two RNG draws.
class ZipfAliasSampler {
 public:
  ZipfAliasSampler(std::uint64_t n, double theta);

  std::uint64_t next(sim::Rng& rng) const;
  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }
  /// Exact probability of rank r (for tests).
  double probability(std::uint64_t rank) const;

 private:
  std::uint64_t n_;
  double theta_;
  double zetan_;
  std::vector<double> accept_;      ///< acceptance threshold per bucket
  std::vector<std::uint32_t> alias_;  ///< fallback rank per bucket
};

struct TrafficConfig {
  /// Aggregate offered load, split evenly across `clients` streams.
  double arrival_rate_per_s = 1000.0;
  sim::Duration duration = sim::Duration::from_seconds(60.0);
  double read_fraction = 0.9;
  std::size_t clients = 4;
  std::uint64_t keyspace = 20000;
  double zipf_theta = 0.99;
  std::uint64_t seed = 1;
};

/// One scheduled control action (start/stop an attack, drain a pod...).
/// Fired at the first arrival at or after `at`; the callback receives
/// the scheduled time.
struct TimelineAction {
  sim::SimTime at = sim::SimTime::zero();
  std::function<void(sim::SimTime)> fn;
};

struct TrafficReport {
  std::uint64_t requests = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
};

/// One request issue from a closed-loop client (already keyed and typed;
/// the drawing happened against the issuing client's own RNG stream).
struct ClientIssue {
  sim::SimTime at = sim::SimTime::zero();
  std::uint32_t client = 0;
  std::uint64_t key = 0;
  bool is_read = true;
};

/// A fixed population of closed-loop clients: each client issues one
/// request, waits for its outcome, then thinks for an exponential gap
/// before the next — so when the service slows down, offered load drops
/// with it (backpressure), instead of the open-loop regime where
/// arrivals keep coming at the configured rate.
///
/// Failed outcomes feed the retry loop this layer exists to study: the
/// client re-issues the same key after a BackoffConfig-shaped delay
/// (fixed / linear / exponential, with deterministic per-client jitter)
/// up to a retry cap, optionally gated by a cluster-wide RetryBudget —
/// which is exactly the retry-storm amplification loop the overload
/// experiment measures.
///
/// Deterministic: every client owns a forked RNG stream and draws its
/// key/read-coin at issue time; backoff jitter comes from a separate
/// per-client splitmix64 stream (so turning jitter on or off never
/// perturbs key draws). The request sequence depends only on
/// (seed, outcome timeline), never on batching.
///
/// The population is sharded: clients are split into contiguous blocks,
/// each owning a timer wheel of (next_issue, client) for its idle
/// members. collect_due harvests only the due timers and merges the
/// shard streams into canonical (at, client) order, so a round over a
/// 10k-client population costs O(due) instead of a full scan. The
/// merged order — and therefore every downstream byte — is identical
/// at any shard count.
class ClosedLoopPopulation {
 public:
  ClosedLoopPopulation() = default;

  /// (Re)seed `clients` streams from `traffic.seed`. Per-client think
  /// mean is clients / arrival_rate, so the aggregate no-load offered
  /// rate matches the open-loop configuration. `shards` only affects
  /// data layout (it follows the engine's shard count); results do not
  /// depend on it. `budget`, when non-null, must outlive the population
  /// and gates every retry (it is earned by fresh issues here too).
  void reset(const TrafficConfig& traffic, std::size_t clients,
             const resilience::BackoffConfig& backoff,
             resilience::RetryBudget* budget, sim::SimTime start,
             std::size_t shards = 1);

  /// Append every client whose next issue falls before `horizon` to
  /// `out` (sorted by (at, client)) and mark them in flight. Their keys
  /// are drawn here, against each client's own stream.
  void collect_due(sim::SimTime horizon, const ZipfAliasSampler& zipf,
                   std::vector<ClientIssue>& out);

  /// Report the outcome of `client`'s in-flight request at `when`.
  void complete(std::uint32_t client, sim::SimTime when, OutcomeKind outcome);

  std::size_t size() const { return clients_.size(); }
  /// Retry re-issues across the run (budget-approved ones only).
  std::uint64_t retries() const { return retries_; }
  const resilience::BackoffConfig& backoff() const { return backoff_; }

 private:
  struct Client {
    sim::Rng rng{0};
    std::uint64_t key = 0;      ///< current key (kept across retries)
    std::uint64_t jitter_state = 0;  ///< private splitmix64 stream
    std::uint32_t attempts = 0;      ///< retries spent on `key`
    std::uint8_t is_read = 1;
    std::uint8_t has_retry = 0;  ///< next issue re-sends `key`
  };

  void push_pending(std::uint32_t client, sim::SimTime at);

  std::vector<Client> clients_;
  /// Per-shard timer wheel of idle clients keyed by next-issue time;
  /// payload = client index. Harvested strictly below the round horizon.
  std::vector<sim::TimerWheel> shard_wheels_;
  std::vector<sim::TimerWheel::Expired> expired_;  ///< harvest scratch
  std::size_t clients_per_shard_ = 1;
  double think_mean_s_ = 0.0;
  double read_fraction_ = 1.0;
  resilience::BackoffConfig backoff_;
  resilience::RetryBudget* budget_ = nullptr;
  std::uint64_t retries_ = 0;
};

class TrafficRunner {
 public:
  TrafficRunner(Balancer& balancer, TrafficConfig config);

  const TrafficConfig& config() const { return config_; }

  /// Drive the full duration of traffic starting at `start`, recording
  /// every request into `slo`. Actions must be sorted by `at`.
  TrafficReport run(sim::SimTime start, SloTracker& slo,
                    std::vector<TimelineAction> actions = {});

 private:
  Balancer& balancer_;
  TrafficConfig config_;
};

}  // namespace deepnote::cluster
