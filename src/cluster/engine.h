// Sharded, epoch-synchronized cluster simulation engine.
//
// The PR5 composition (Balancer + TrafficRunner) walks one global serial
// request stream and re-scans every node's probe timer per request —
// fine at 15 nodes, interactive-hostile at 1000. This engine rebuilds
// the cluster core for throughput:
//
//  * Time is sliced into fixed epochs. Cluster-wide control state
//    (node health, routing ranks, hedge heat, attack on/off) is frozen
//    at each epoch barrier, so everything inside an epoch is
//    embarrassingly parallel per node.
//  * Traffic is generated in per-epoch batches (one merged Poisson
//    stream, alias-method Zipf keys) straight into reused flat arrays —
//    the steady-state loop performs zero heap allocations.
//  * Node state is structure-of-arrays: health, probe timers, detector
//    objects, and per-node op counters live in flat vectors indexed by
//    NodeId, not in per-node heap objects.
//  * Replica I/O executes in waves: wave 0 issues every request's
//    primary legs (plus hedges and write fan-out), later waves issue
//    failover legs whose start times depend on earlier completions.
//    Within a wave, node groups (shards) advance in parallel on the
//    sim::TaskPool; each node executes its ops in a fixed (issue, seq)
//    order, so results are bit-identical at ANY shard/job count — the
//    partition only decides which thread does the work, never what the
//    work is.
//
// Control-loop semantics mirror the Balancer: health-ranked candidate
// order, hedged reads, a token-bucket retry budget, majority write
// quorum, detector-driven drain and probe/readmit — evaluated against
// the epoch-start snapshot instead of per-request, which is the (small,
// deliberate) fidelity trade that buys the parallelism.
//
// Serving mode (EngineConfig::serving.enabled) swaps the per-node op
// execution from immediate dispatch to a NodeServer pipeline: every
// non-probe leg goes through a bounded FIFO queue with admission
// control and timer-wheel per-request deadlines in front of the
// device. A wave submits a node's whole batch into the server's staged
// ring, drains it, then consumes the completion ring in bulk — no
// per-op callbacks or event-queue round trips. Backlog (busy_until_)
// persists across waves and epochs, so head-of-line blocking during an
// attack is visible as queue wait. Traffic can run
// closed-loop: a fixed client population issues, waits, thinks, and
// retries shed requests with backoff — offered load sags under
// overload instead of silently dropping. Probes bypass the queue
// (health checks must not skew serving stats, matching the Balancer).
// Everything else — epoch barriers, wave structure, SoA arenas,
// byte-identical results at any DEEPNOTE_JOBS — is unchanged, and the
// immediate path remains the reference composition.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cluster/balancer.h"
#include "cluster/resilience/breaker.h"
#include "cluster/resilience/brownout.h"
#include "cluster/resilience/chaos.h"
#include "cluster/resilience/retry.h"
#include "cluster/serving/node_server.h"
#include "cluster/slo.h"
#include "cluster/traffic.h"
#include "sim/task_pool.h"

namespace deepnote::cluster {

/// Knobs for the serving op-execution mode. Defaults are off: the
/// engine behaves exactly as the immediate-dispatch reference.
struct ServingModeConfig {
  bool enabled = false;
  /// Per-node queue limit and shed policy.
  serving::ServerConfig server;
  /// Closed-loop arrivals: a fixed client population (think mean =
  /// clients / arrival_rate) instead of the merged open-loop stream.
  /// Off, the open-loop generator is reused verbatim — same RNG stream,
  /// same arrivals as immediate mode.
  bool closed_loop = true;
  std::size_t clients = 64;
  /// Client retry shaping: backoff kind/base/cap, deterministic
  /// per-client jitter, retry cap, and whether device failures and
  /// deadline misses retry too (sheds always do).
  resilience::BackoffConfig backoff;
  /// Cluster-wide token-bucket retry budget (balancer-style): fresh
  /// issues earn fractional tokens, every retry spends one; an empty
  /// bucket denies the retry outright. Off by default.
  resilience::RetryBudgetConfig retry_budget;
};

/// Serving-mode telemetry: per-leg terminal states from the node
/// pipelines, request-level failure classification, the queue-wait vs.
/// service-time latency decomposition, and retry-storm counters.
struct ServingReport {
  std::uint64_t legs_submitted = 0;
  std::uint64_t legs_served = 0;
  std::uint64_t legs_failed = 0;
  std::uint64_t legs_timed_out = 0;
  std::uint64_t legs_shed = 0;
  std::uint64_t legs_cancelled = 0;  ///< hedge legs stopped by the winner
  /// Failed requests classified by dominant cause (shed > timeout >
  /// device error; a shed leg anywhere in the request marks it shed).
  std::uint64_t shed_requests = 0;
  std::uint64_t timed_out_requests = 0;
  std::uint64_t error_requests = 0;
  /// Closed-loop retry re-issues (0 in open-loop serving).
  std::uint64_t client_retries = 0;
  /// Retry-budget accounting (zero when the budget is disabled).
  std::uint64_t retry_budget_spent = 0;
  std::uint64_t retry_budget_denied = 0;
  /// Brownout controller: requests shed by priority class, and how many
  /// times the shed level escalated.
  std::uint64_t brownout_shed = 0;
  std::uint64_t brownout_escalations = 0;
  /// Circuit breakers: closed->open trips and legs denied while open.
  std::uint64_t breaker_opens = 0;
  std::uint64_t breaker_short_circuits = 0;
  std::uint64_t max_queue_depth = 0;
  double queue_wait_p50_ms = 0.0;
  double queue_wait_p99_ms = 0.0;
  double service_p50_ms = 0.0;
  double service_p99_ms = 0.0;
};

struct EngineConfig {
  /// Routing/quorum/probe knobs; shares the Balancer's config type so
  /// experiments can run either engine from one description.
  BalancerConfig balancer;
  /// Arrival rate, duration, read mix, keyspace. `clients` is ignored:
  /// the engine generates one merged open-loop Poisson stream.
  TrafficConfig traffic;
  /// Per-node health monitor.
  core::DetectorConfig detector = ClusterConfig::fleet_detector();
  /// Epoch length: the control loop's reaction quantum. Smaller epochs
  /// track the serial balancer more closely; larger epochs amortize the
  /// barrier. Timeline actions always land exactly on a boundary (epochs
  /// are clamped to pending action times).
  sim::Duration epoch = sim::Duration::from_millis(50.0);
  /// Worker threads for wave execution. 0 = $DEEPNOTE_JOBS / all cores,
  /// 1 = fully inline (no pool). Results are identical at any value.
  unsigned jobs = 1;
  /// Waves smaller than this run inline even when a pool exists: at
  /// small grids the barrier costs more than the work. 0 forces
  /// sharding (used by the cross-thread determinism tests).
  std::size_t min_ops_to_shard = 2048;
  /// Optional pre-built alias table shared across runs (the 1M-key
  /// table costs one O(n) build; benches reuse it between iterations).
  /// Must match traffic.keyspace / traffic.zipf_theta when set.
  std::shared_ptr<const ZipfAliasSampler> zipf;
  /// Async serving front-end (queueing, admission, closed-loop clients).
  ServingModeConfig serving;
  /// Per-replica circuit breakers (serving mode; transitions at epoch
  /// barriers, open nodes ranked behind drained for routing and denied
  /// legs fail over instantly).
  resilience::BreakerConfig breaker;
  /// Brownout controller: shed low-priority traffic classes when the
  /// deadline-miss EWMA or queue depth crosses thresholds (serving
  /// closed-loop mode).
  resilience::BrownoutConfig brownout;
};

struct EngineReport {
  TrafficReport traffic;
  BalancerStats stats;
  /// Deepest per-node op queue seen in any epoch (load-skew telemetry).
  std::uint64_t max_node_depth = 0;
  /// Populated only in serving mode.
  ServingReport serving;
};

class ShardedClusterEngine {
 public:
  /// Routes over `devices` (non-owning, id order must match `topology`).
  /// Detectors and health state live inside the engine.
  ShardedClusterEngine(ClusterTopology topology,
                       std::vector<storage::BlockDevice*> devices,
                       EngineConfig config);

  ShardedClusterEngine(const ShardedClusterEngine&) = delete;
  ShardedClusterEngine& operator=(const ShardedClusterEngine&) = delete;

  const EngineConfig& config() const { return config_; }
  const PlacementMap& placement() const { return placement_; }
  const BalancerStats& stats() const { return stats_; }
  unsigned shards() const { return shard_count_; }

  /// One-shot: the full traffic duration starting at `start`, recording
  /// every request into `slo`. Actions must be sorted by `at`; they fire
  /// at epoch boundaries, no earlier than the latest completion already
  /// handed out (same frontier rule as the serial runner).
  EngineReport run(sim::SimTime start, SloTracker& slo,
                   std::vector<TimelineAction> actions = {});

  /// Stepping API (tests and future front-ends pump epochs manually).
  void start_run(sim::SimTime start, SloTracker& slo,
                 std::vector<TimelineAction> actions = {});
  /// Simulate one epoch; false once the traffic duration is exhausted.
  bool step();
  EngineReport finish();

  NodeHealth health(NodeId id) const { return health_[id]; }
  const core::AttackDetector& detector(NodeId id) const {
    return detectors_[id];
  }

  // --- chaos-injection hooks --------------------------------------------
  // Called from TimelineActions only, i.e. at single-threaded epoch
  // barriers; never during waves. State persists across epochs and is
  // cleared at the next start_run().

  /// Crash (`down` true) or restart (`down` false) a node. Counted, so
  /// overlapping crash windows compose: the node is up again only when
  /// every crash has matched its restart. Legs and probes to a down node
  /// fail instantly at issue (and feed the failure detector).
  void chaos_node_down(NodeId node, bool down);
  /// Override the failure detector: kForceDown drains a healthy node
  /// every barrier (false positive), kSuppress masks real alerts (false
  /// negative), kNone restores normal behavior.
  void chaos_set_flap(NodeId node, resilience::ChaosFlapMode mode);
  /// Inflate a node's device service spans (serving mode). 1.0 restores
  /// normal service; last call wins.
  void chaos_set_service_scale(NodeId node, double scale);

  const resilience::BreakerBank& breakers() const { return breakers_; }
  const resilience::BrownoutController& brownout() const { return brownout_; }
  const resilience::RetryBudget& retry_budget() const { return retry_budget_; }

  /// One queue-depth sample per epoch: the max depth any node's serving
  /// queue reached during it (empty outside serving mode).
  struct DepthSample {
    sim::SimTime at = sim::SimTime::zero();  ///< epoch end
    std::uint64_t depth = 0;
  };
  const std::vector<DepthSample>& depth_timeline() const {
    return depth_timeline_;
  }
  /// Merged serving histograms; valid after finish().
  const sim::LatencyHistogram& queue_wait_histogram() const {
    return qwait_hist_;
  }
  const sim::LatencyHistogram& service_histogram() const {
    return service_hist_;
  }
  const serving::NodeServer& server(NodeId id) const { return servers_[id]; }

 private:
  struct Op {
    sim::SimTime issue;
    std::uint32_t seq;   ///< emission order; tie-break for equal issue
    std::uint32_t req;   ///< request index (probe index for kProbe)
    std::uint16_t leg;   ///< completion slot within the request
    std::uint8_t kind;   ///< kRead / kWrite / kProbe
  };
  static constexpr std::uint8_t kRead = 0;
  static constexpr std::uint8_t kWrite = 1;
  static constexpr std::uint8_t kProbe = 2;

  sim::SimTime deadline_of(std::uint32_t r) const;
  bool spend_retry_token();
  void refill_retry_tokens();
  bool serving() const { return config_.serving.enabled; }

  void fire_actions_due(sim::SimTime now);
  void snapshot_control_state();
  void begin_epoch();
  void schedule_probes(sim::SimTime t0, sim::SimTime t1);
  void generate_and_route(sim::SimTime t0, sim::SimTime t1);
  std::uint32_t push_request(sim::SimTime arrival, std::uint64_t key,
                             bool is_read);
  void route_read(std::uint32_t r);
  void route_write(std::uint32_t r);
  void emit(NodeId node, std::uint8_t kind, std::uint32_t req,
            std::uint16_t leg, sim::SimTime issue);

  void execute_wave();
  void execute_nodes(std::size_t shard_lo, std::size_t shard_hi,
                     std::size_t shard_slot);
  void run_waves(std::size_t first_req);
  void combine_wave0(std::size_t first_req);
  void combine_failover_wave();
  void try_emit_failover(std::uint32_t r);
  void fail_read(std::uint32_t r);
  void combine_write(std::uint32_t r);
  void barrier_control(sim::SimTime t1);
  void account_epoch_slo();
  void chaos_touch(NodeId node);

  // --- serving mode -----------------------------------------------------
  void record_serving_result(NodeId node, std::size_t shard,
                             const serving::ServeResult& result);
  void note_fail_kind(std::uint32_t r, std::uint8_t slot_outcome);
  OutcomeKind request_outcome(std::uint32_t r) const;
  void settle_clients(std::size_t first_req);
  void sample_epoch_depth(sim::SimTime t1);

  // --- construction-time state ------------------------------------------
  ClusterTopology topology_;
  std::vector<storage::BlockDevice*> devices_;
  EngineConfig config_;
  PlacementMap placement_;
  std::size_t write_quorum_;
  std::size_t leg_stride_;  ///< completion slots per request
  std::shared_ptr<const ZipfAliasSampler> zipf_;
  double mean_gap_s_;
  double hedge_threshold_s_;

  unsigned shard_count_;
  std::size_t nodes_per_shard_;
  std::unique_ptr<sim::TaskPool> pool_;
  std::function<void(std::size_t)> wave_fn_;  ///< built once; no per-wave alloc

  // --- per-node SoA state (indexed by NodeId) ---------------------------
  std::vector<core::AttackDetector> detectors_;
  std::vector<NodeHealth> health_;
  std::vector<sim::SimTime> next_probe_;
  std::vector<std::uint8_t> rank_snap_;  ///< epoch-start health rank
  std::vector<std::uint8_t> hot_snap_;   ///< epoch-start hedge heat
  std::vector<std::uint64_t> node_reads_;
  std::vector<std::uint64_t> node_writes_;
  std::vector<std::uint64_t> node_errors_;
  std::vector<std::uint32_t> node_depth_;  ///< ops queued this epoch
  std::vector<std::vector<Op>> node_ops_;  ///< per-node wave queues
  std::vector<std::uint32_t> node_shard_;  ///< owning shard, precomputed
  /// Nodes with queued ops this wave, one list per shard: a wave at 10k
  /// nodes touches only the nodes traffic actually hit instead of
  /// scanning every queue. Filled by emit() on empty -> nonempty,
  /// consumed and cleared by execute_nodes().
  std::vector<std::vector<NodeId>> shard_active_;
  /// Serving mode only: one queued pipeline per node, contiguous so a
  /// wave walking its active nodes streams through adjacent objects.
  std::vector<serving::NodeServer> servers_;
  /// Serving mode only: nodes whose server saw a submit this epoch or
  /// still holds backlog — the only ones sample_epoch_depth() must
  /// visit. Flag-deduped, per-shard (owner-exclusive during waves),
  /// compacted at each sample.
  std::vector<std::uint8_t> depth_dirty_;
  std::vector<std::vector<NodeId>> shard_depth_dirty_;
  /// Serving mode only: servers submitted to at least once this run —
  /// the only ones whose stats need aggregating at finish() and whose
  /// state needs resetting at the next start_run(). Every other server
  /// is still pristine, so a run over a lightly-touched 10k fleet never
  /// walks the whole fleet. Flag-deduped, per-shard during waves.
  std::vector<std::uint8_t> server_used_;
  std::vector<std::vector<NodeId>> shard_used_;
  /// Chaos state (always sized; zero cost when no chaos is scheduled).
  /// Mutated only at barriers; waves read it like any other epoch-start
  /// control snapshot.
  std::vector<std::uint16_t> chaos_down_;  ///< overlapping crash count
  std::vector<std::uint8_t> chaos_flap_;   ///< resilience::ChaosFlapMode
  std::vector<std::uint8_t> chaos_touched_;
  std::vector<NodeId> chaos_touched_list_;  ///< O(touched) reset at start_run

  // --- per-epoch request/completion arenas (reused, never shrunk) -------
  std::vector<sim::SimTime> req_arrival_;
  std::vector<std::uint64_t> req_lba_;
  std::vector<std::uint8_t> req_is_read_;
  std::vector<std::uint8_t> req_hedged_;
  std::vector<std::uint8_t> req_ok_;
  std::vector<sim::SimTime> req_complete_;
  std::vector<sim::SimTime> req_t_;  ///< failure-path time cursor
  std::vector<std::uint32_t> req_attempts_;
  std::vector<std::uint16_t> req_next_cand_;
  std::vector<std::uint16_t> req_ncand_;   ///< ranked candidates (reads)
  std::vector<std::uint16_t> req_nlegs_;   ///< emitted legs (writes)
  std::vector<NodeId> req_cand_;           ///< leg_stride_ per request
  std::vector<std::uint8_t> req_fail_kind_;  ///< OutcomeKind; serving mode
  std::vector<std::uint32_t> req_client_;    ///< closed-loop issuer
  /// Serving hedges: the backup leg's cancel time (the primary's win
  /// instant, or infinity when the primary lost). Written by
  /// combine_wave0, read by execute_nodes when submitting leg 1.
  std::vector<sim::SimTime> req_hedge_cancel_;
  std::vector<std::uint8_t> leg_ok_;       ///< leg_stride_ per request
  std::vector<sim::SimTime> leg_complete_;
  std::vector<std::uint8_t> leg_outcome_;  ///< OutcomeKind; serving mode
  std::vector<NodeId> probe_node_;
  std::vector<sim::SimTime> probe_issue_;
  std::vector<sim::SimTime> probe_complete_;
  std::vector<std::uint8_t> probe_ok_;
  std::vector<std::uint32_t> pending_;       ///< reads awaiting this wave
  std::vector<std::uint32_t> next_pending_;  ///< reads emitted for next wave
  bool wave_lists_flipped_ = false;  ///< parity of pending_ role swaps
  std::vector<NodeId> replica_scratch_;
  std::vector<sim::SimTime> ack_scratch_;
  std::vector<std::vector<std::byte>> shard_read_buf_;  ///< one per shard
  std::vector<std::byte> write_buf_;
  std::vector<sim::SimTime> shard_frontier_;

  // --- run state --------------------------------------------------------
  bool running_ = false;
  sim::Rng rng_{0};
  sim::SimTime next_arrival_ = sim::SimTime::zero();
  SloTracker* slo_ = nullptr;
  std::vector<TimelineAction> actions_;
  std::size_t next_action_ = 0;
  sim::SimTime start_ = sim::SimTime::zero();
  sim::SimTime end_ = sim::SimTime::zero();
  sim::SimTime cursor_ = sim::SimTime::zero();
  sim::SimTime frontier_ = sim::SimTime::zero();
  double retry_tokens_ = 0.0;
  std::uint32_t op_seq_ = 0;
  std::size_t ops_emitted_ = 0;
  BalancerStats stats_;
  TrafficReport traffic_;
  std::uint64_t max_node_depth_ = 0;

  // --- serving-mode run state -------------------------------------------
  ClosedLoopPopulation clients_;
  std::vector<ClientIssue> issue_scratch_;
  /// Owner-exclusive: a shard's listener callbacks only touch its slot.
  std::vector<sim::LatencyHistogram> shard_qwait_;
  std::vector<sim::LatencyHistogram> shard_service_;
  sim::LatencyHistogram qwait_hist_;    ///< merged at finish()
  sim::LatencyHistogram service_hist_;  ///< merged at finish()
  std::vector<DepthSample> depth_timeline_;
  std::uint64_t shed_requests_ = 0;
  std::uint64_t timed_out_requests_ = 0;
  std::uint64_t error_requests_ = 0;

  // --- resilience state -------------------------------------------------
  resilience::BreakerBank breakers_;
  resilience::BrownoutController brownout_;
  resilience::RetryBudget retry_budget_;
  std::uint64_t brownout_shed_ = 0;
  /// Per-epoch brownout inputs, reset in begin_epoch().
  std::uint64_t epoch_misses_ = 0;
  std::uint64_t epoch_brownout_shed_ = 0;
};

}  // namespace deepnote::cluster
