#include "cluster/experiment.h"

#include <string>
#include <utility>

#include "core/attack.h"
#include "sim/trial_runner.h"

namespace deepnote::cluster {

ClusterExperimentConfig cluster_experiment_config(double scale) {
  ClusterExperimentConfig config;
  // 400 req/s keeps the dense same-pod layout below drive saturation at
  // baseline (~70 ops/s/bay against ~125 ops/s of seek-bound capacity),
  // so availability loss in the table is attack signal, not queueing.
  config.traffic.arrival_rate_per_s = 400.0;
  config.warmup = sim::Duration::from_seconds(10.0 * scale);
  config.attack_window = sim::Duration::from_seconds(40.0 * scale);
  config.cooldown = sim::Duration::from_seconds(10.0 * scale);
  return config;
}

namespace {

ClusterTrialRow run_cell(const ClusterExperimentConfig& config,
                         PlacementPolicy policy,
                         std::optional<double> distance_m,
                         std::uint64_t cell_seed) {
  ClusterConfig cluster_config;
  cluster_config.scenario = config.scenario;
  cluster_config.topology = config.topology;
  cluster_config.seed = sim::trial_seed(cell_seed, 0);
  Cluster cluster(cluster_config);

  BalancerConfig balancer_config = config.balancer;
  balancer_config.policy = policy;
  balancer_config.replication = config.replication;
  Balancer balancer(cluster, balancer_config);

  TrafficConfig traffic_config = config.traffic;
  traffic_config.duration =
      config.warmup + config.attack_window + config.cooldown;
  traffic_config.seed = sim::trial_seed(cell_seed, 1);
  TrafficRunner traffic(balancer, traffic_config);

  const sim::SimTime start = sim::SimTime::zero();
  const sim::SimTime attack_on = start + config.warmup;
  const sim::SimTime attack_off = attack_on + config.attack_window;

  SloTracker slo(start);
  slo.set_focus(attack_on, attack_off);

  std::vector<TimelineAction> actions;
  if (distance_m.has_value()) {
    core::AttackConfig attack;
    attack.frequency_hz = config.frequency_hz;
    attack.spl_air_db = config.spl_air_db;
    attack.distance_m = *distance_m;
    attack.start = attack_on;
    attack.end = attack_off;
    const std::size_t pod = config.attacked_pod;
    actions.push_back({attack_on, [&cluster, pod, attack](sim::SimTime t) {
                         cluster.apply_attack(pod, t, attack);
                       }});
    actions.push_back({attack_off, [&cluster, pod](sim::SimTime t) {
                         cluster.stop_attack(pod, t);
                       }});
  }

  const TrafficReport report = traffic.run(start, slo, std::move(actions));

  ClusterTrialRow row;
  row.policy = policy;
  row.distance_m = distance_m;
  row.requests = report.requests;
  row.failed = slo.failed();
  row.availability = slo.availability();
  row.attack_availability = slo.focus_availability();
  row.p50_ms = slo.p50().millis();
  row.p99_ms = slo.p99().millis();
  row.p999_ms = slo.p999().millis();
  const BalancerStats& stats = balancer.stats();
  row.read_failovers = stats.read_failovers;
  row.hedged_reads = stats.hedged_reads;
  row.drains = stats.drains;
  row.readmits = stats.readmits;
  return row;
}

}  // namespace

std::vector<ClusterTrialRow> run_cluster_experiment(
    const ClusterExperimentConfig& config) {
  struct Cell {
    PlacementPolicy policy;
    std::optional<double> distance_m;
  };
  std::vector<Cell> grid;
  grid.reserve(config.policies.size() * config.distances_m.size());
  for (PlacementPolicy policy : config.policies) {
    for (const auto& distance : config.distances_m) {
      grid.push_back({policy, distance});
    }
  }
  return sim::run_trials<ClusterTrialRow>(
      grid.size(), config.jobs, [&](std::size_t i) {
        return run_cell(config, grid[i].policy, grid[i].distance_m,
                        sim::trial_seed(config.seed, i));
      });
}

sim::Table build_cluster_availability_table(
    const ClusterExperimentConfig& config,
    const std::vector<ClusterTrialRow>& rows) {
  sim::Table table(
      "Cluster availability under a single-pod " +
      sim::format_fixed(config.frequency_hz, 0) + " Hz / " +
      sim::format_fixed(config.spl_air_db, 0) + " dB attack (" +
      std::to_string(config.topology.pods) + " pods x " +
      std::to_string(config.topology.bays_per_pod) + " bays, R=" +
      std::to_string(config.replication) + ")");
  table.set_columns({"Policy", "Distance (cm)", "Avail %", "Attack avail %",
                     "p50 ms", "p99 ms", "p99.9 ms", "Failovers", "Drains",
                     "Failed"});
  for (const ClusterTrialRow& row : rows) {
    table.row().cell(placement_name(row.policy));
    if (row.distance_m.has_value()) {
      table.cell(*row.distance_m * 100.0, 0);
    } else {
      table.dash();
    }
    table.cell(row.availability * 100.0, 3)
        .cell(row.attack_availability * 100.0, 3)
        .cell(row.p50_ms, 2)
        .cell(row.p99_ms, 2)
        .cell(row.p999_ms, 2)
        .cell(static_cast<std::int64_t>(row.read_failovers))
        .cell(static_cast<std::int64_t>(row.drains))
        .cell(static_cast<std::int64_t>(row.failed));
  }
  return table;
}

}  // namespace deepnote::cluster
