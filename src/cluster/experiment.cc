#include "cluster/experiment.h"

#include <string>
#include <utility>

#include "core/attack.h"
#include "sim/trial_runner.h"

namespace deepnote::cluster {

ClusterExperimentConfig cluster_experiment_config(double scale) {
  ClusterExperimentConfig config;
  // 400 req/s keeps the dense same-pod layout below drive saturation at
  // baseline (~70 ops/s/bay against ~125 ops/s of seek-bound capacity),
  // so availability loss in the table is attack signal, not queueing.
  config.traffic.arrival_rate_per_s = 400.0;
  config.warmup = sim::Duration::from_seconds(10.0 * scale);
  config.attack_window = sim::Duration::from_seconds(40.0 * scale);
  config.cooldown = sim::Duration::from_seconds(10.0 * scale);
  return config;
}

namespace {

/// Everything a cell needs before choosing an execution engine: the
/// cluster, the attack timeline, the focus-tracking SLO, and resolved
/// balancer/traffic configs.
struct CellSetup {
  Cluster cluster;
  BalancerConfig balancer;
  TrafficConfig traffic;
  SloTracker slo;
  std::vector<TimelineAction> actions;

  /// Works for both experiment config types (they share the relevant
  /// field names: topology/scenario, balancer/traffic, the attack shape
  /// and the warmup/attack/cooldown timeline).
  template <typename ConfigT>
  CellSetup(const ConfigT& config, PlacementPolicy policy,
            std::optional<double> distance_m, std::uint64_t cell_seed)
      : cluster(make_cluster_config(config, cell_seed)),
        balancer(config.balancer),
        traffic(config.traffic),
        slo(sim::SimTime::zero()) {
    balancer.policy = policy;
    balancer.replication = config.replication;
    traffic.duration = config.warmup + config.attack_window + config.cooldown;
    traffic.seed = sim::trial_seed(cell_seed, 1);

    const sim::SimTime attack_on = sim::SimTime::zero() + config.warmup;
    const sim::SimTime attack_off = attack_on + config.attack_window;
    slo.set_focus(attack_on, attack_off);

    if (distance_m.has_value()) {
      core::AttackConfig attack;
      attack.frequency_hz = config.frequency_hz;
      attack.spl_air_db = config.spl_air_db;
      attack.distance_m = *distance_m;
      attack.start = attack_on;
      attack.end = attack_off;
      const std::size_t pod = config.attacked_pod;
      Cluster* target = &cluster;
      actions.push_back({attack_on, [target, pod, attack](sim::SimTime t) {
                           target->apply_attack(pod, t, attack);
                         }});
      actions.push_back({attack_off, [target, pod](sim::SimTime t) {
                           target->stop_attack(pod, t);
                         }});
    }
  }

  template <typename ConfigT>
  static ClusterConfig make_cluster_config(
      const ConfigT& config, std::uint64_t cell_seed) {
    ClusterConfig cluster_config;
    cluster_config.scenario = config.scenario;
    cluster_config.topology = config.topology;
    cluster_config.seed = sim::trial_seed(cell_seed, 0);
    return cluster_config;
  }
};

ClusterTrialRow make_row(PlacementPolicy policy,
                         std::optional<double> distance_m,
                         const TrafficReport& report, const SloTracker& slo,
                         const BalancerStats& stats) {
  ClusterTrialRow row;
  row.policy = policy;
  row.distance_m = distance_m;
  row.requests = report.requests;
  row.failed = slo.failed();
  row.availability = slo.availability();
  row.attack_availability = slo.focus_availability();
  row.p50_ms = slo.p50().millis();
  row.p99_ms = slo.p99().millis();
  row.p999_ms = slo.p999().millis();
  row.read_failovers = stats.read_failovers;
  row.hedged_reads = stats.hedged_reads;
  row.drains = stats.drains;
  row.readmits = stats.readmits;
  return row;
}

}  // namespace

ClusterTrialRow run_cluster_cell(const ClusterExperimentConfig& config,
                                 PlacementPolicy policy,
                                 std::optional<double> distance_m,
                                 std::uint64_t cell_seed,
                                 std::shared_ptr<const ZipfAliasSampler> zipf,
                                 unsigned engine_jobs) {
  CellSetup cell(config, policy, distance_m, cell_seed);

  EngineConfig engine_config;
  engine_config.balancer = cell.balancer;
  engine_config.traffic = cell.traffic;
  engine_config.detector = cell.cluster.config().detector;
  engine_config.jobs = engine_jobs;
  engine_config.zipf = std::move(zipf);
  ShardedClusterEngine engine(cell.cluster.topology(),
                              cell.cluster.device_pointers(),
                              std::move(engine_config));

  const EngineReport report = engine.run(sim::SimTime::zero(), cell.slo,
                                         std::move(cell.actions));
  return make_row(policy, distance_m, report.traffic, cell.slo, report.stats);
}

ClusterTrialRow run_cluster_cell_serial(const ClusterExperimentConfig& config,
                                        PlacementPolicy policy,
                                        std::optional<double> distance_m,
                                        std::uint64_t cell_seed) {
  CellSetup cell(config, policy, distance_m, cell_seed);

  Balancer balancer(cell.cluster, cell.balancer);
  TrafficRunner traffic(balancer, cell.traffic);
  const TrafficReport report =
      traffic.run(sim::SimTime::zero(), cell.slo, std::move(cell.actions));
  return make_row(policy, distance_m, report, cell.slo, balancer.stats());
}

std::vector<ClusterTrialRow> run_cluster_experiment(
    const ClusterExperimentConfig& config) {
  struct Cell {
    PlacementPolicy policy;
    std::optional<double> distance_m;
  };
  std::vector<Cell> grid;
  grid.reserve(config.policies.size() * config.distances_m.size());
  for (PlacementPolicy policy : config.policies) {
    for (const auto& distance : config.distances_m) {
      grid.push_back({policy, distance});
    }
  }
  // One alias table serves every cell: it depends only on
  // (keyspace, theta), which the grid never varies.
  const auto zipf = std::make_shared<const ZipfAliasSampler>(
      config.traffic.keyspace, config.traffic.zipf_theta);
  return sim::run_trials<ClusterTrialRow>(
      grid.size(), config.jobs, [&](std::size_t i) {
        return run_cluster_cell(config, grid[i].policy, grid[i].distance_m,
                                sim::trial_seed(config.seed, i), zipf);
      });
}

ServingExperimentConfig serving_experiment_config(double scale) {
  ServingExperimentConfig config;
  // Same offered rate as the availability experiment; the closed-loop
  // population converts it into a think mean (clients / rate), so the
  // no-load arrival process matches and every deviation under attack is
  // backpressure signal.
  config.traffic.arrival_rate_per_s = 400.0;
  config.warmup = sim::Duration::from_seconds(10.0 * scale);
  config.attack_window = sim::Duration::from_seconds(40.0 * scale);
  config.cooldown = sim::Duration::from_seconds(10.0 * scale);
  return config;
}

ServingTrialRow run_serving_cell(const ServingExperimentConfig& config,
                                 std::size_t queue_limit,
                                 serving::AdmissionPolicy admission,
                                 std::optional<double> distance_m,
                                 std::uint64_t cell_seed,
                                 std::shared_ptr<const ZipfAliasSampler> zipf,
                                 unsigned engine_jobs) {
  CellSetup cell(config, config.policy, distance_m, cell_seed);

  EngineConfig engine_config;
  engine_config.balancer = cell.balancer;
  engine_config.traffic = cell.traffic;
  engine_config.detector = cell.cluster.config().detector;
  engine_config.jobs = engine_jobs;
  engine_config.zipf = std::move(zipf);
  engine_config.serving = config.serving;
  engine_config.serving.enabled = true;
  engine_config.serving.server.queue_limit = queue_limit;
  engine_config.serving.server.admission = admission;
  ShardedClusterEngine engine(cell.cluster.topology(),
                              cell.cluster.device_pointers(),
                              std::move(engine_config));

  const EngineReport report = engine.run(sim::SimTime::zero(), cell.slo,
                                         std::move(cell.actions));

  const sim::SimTime attack_on = sim::SimTime::zero() + config.warmup;
  const sim::SimTime attack_off = attack_on + config.attack_window;

  ServingTrialRow row;
  row.queue_limit = queue_limit;
  row.admission = admission;
  row.distance_m = distance_m;
  row.requests = report.traffic.requests;
  row.availability = cell.slo.availability();
  row.attack_availability = cell.slo.focus_availability();
  row.p50_ms = cell.slo.p50().millis();
  row.p99_ms = cell.slo.p99().millis();
  row.queue_wait_p99_ms = report.serving.queue_wait_p99_ms;
  row.service_p99_ms = report.serving.service_p99_ms;
  row.shed_requests = report.serving.shed_requests;
  row.timed_out_requests = report.serving.timed_out_requests;
  row.legs_shed = report.serving.legs_shed;
  row.legs_timed_out = report.serving.legs_timed_out;
  row.attack_shed = cell.slo.focus_outcome_count(OutcomeKind::kShed);
  row.attack_timed_out = cell.slo.focus_outcome_count(OutcomeKind::kTimedOut);
  row.client_retries = report.serving.client_retries;
  row.max_queue_depth = report.serving.max_queue_depth;
  for (const ShardedClusterEngine::DepthSample& sample :
       engine.depth_timeline()) {
    // Epochs are clamped to the attack boundaries, so the window's
    // samples are exactly those ending in (on, off].
    if (sample.at > attack_on && sample.at <= attack_off) {
      row.attack_max_queue_depth =
          std::max(row.attack_max_queue_depth, sample.depth);
    }
  }
  row.read_failovers = report.stats.read_failovers;
  row.drains = report.stats.drains;
  return row;
}

std::vector<ServingTrialRow> run_serving_experiment(
    const ServingExperimentConfig& config) {
  struct Cell {
    std::size_t queue_limit;
    serving::AdmissionPolicy admission;
    std::optional<double> distance_m;
  };
  std::vector<Cell> grid;
  grid.reserve(config.queue_limits.size() * config.admissions.size() *
               config.distances_m.size());
  for (const std::size_t queue_limit : config.queue_limits) {
    for (const serving::AdmissionPolicy admission : config.admissions) {
      for (const auto& distance : config.distances_m) {
        grid.push_back({queue_limit, admission, distance});
      }
    }
  }
  const auto zipf = std::make_shared<const ZipfAliasSampler>(
      config.traffic.keyspace, config.traffic.zipf_theta);
  return sim::run_trials<ServingTrialRow>(
      grid.size(), config.jobs, [&](std::size_t i) {
        return run_serving_cell(config, grid[i].queue_limit,
                                grid[i].admission, grid[i].distance_m,
                                sim::trial_seed(config.seed, i), zipf);
      });
}

sim::Table build_cluster_serving_table(
    const ServingExperimentConfig& config,
    const std::vector<ServingTrialRow>& rows) {
  sim::Table table(
      "Serving behavior under a single-pod " +
      sim::format_fixed(config.frequency_hz, 0) + " Hz / " +
      sim::format_fixed(config.spl_air_db, 0) + " dB attack (" +
      std::to_string(config.topology.pods) + " pods x " +
      std::to_string(config.topology.bays_per_pod) + " bays, " +
      placement_name(config.policy) + " R=" +
      std::to_string(config.replication) + ", closed loop)");
  table.set_columns({"Queue", "Admission", "Distance (cm)", "Avail %",
                     "Attack avail %", "p50 ms", "p99 ms", "QWait p99 ms",
                     "Svc p99 ms", "Shed", "Timed out", "Shed legs",
                     "T/o legs", "Retries", "Max depth", "Atk depth",
                     "Failovers", "Drains"});
  for (const ServingTrialRow& row : rows) {
    table.row()
        .cell(static_cast<std::int64_t>(row.queue_limit))
        .cell(serving::admission_name(row.admission));
    if (row.distance_m.has_value()) {
      table.cell(*row.distance_m * 100.0, 0);
    } else {
      table.dash();
    }
    table.cell(row.availability * 100.0, 3)
        .cell(row.attack_availability * 100.0, 3)
        .cell(row.p50_ms, 2)
        .cell(row.p99_ms, 2)
        .cell(row.queue_wait_p99_ms, 2)
        .cell(row.service_p99_ms, 2)
        .cell(static_cast<std::int64_t>(row.shed_requests))
        .cell(static_cast<std::int64_t>(row.timed_out_requests))
        .cell(static_cast<std::int64_t>(row.legs_shed))
        .cell(static_cast<std::int64_t>(row.legs_timed_out))
        .cell(static_cast<std::int64_t>(row.client_retries))
        .cell(static_cast<std::int64_t>(row.max_queue_depth))
        .cell(static_cast<std::int64_t>(row.attack_max_queue_depth))
        .cell(static_cast<std::int64_t>(row.read_failovers))
        .cell(static_cast<std::int64_t>(row.drains));
  }
  return table;
}

sim::Table build_cluster_availability_table(
    const ClusterExperimentConfig& config,
    const std::vector<ClusterTrialRow>& rows) {
  sim::Table table(
      "Cluster availability under a single-pod " +
      sim::format_fixed(config.frequency_hz, 0) + " Hz / " +
      sim::format_fixed(config.spl_air_db, 0) + " dB attack (" +
      std::to_string(config.topology.pods) + " pods x " +
      std::to_string(config.topology.bays_per_pod) + " bays, R=" +
      std::to_string(config.replication) + ")");
  table.set_columns({"Policy", "Distance (cm)", "Avail %", "Attack avail %",
                     "p50 ms", "p99 ms", "p99.9 ms", "Failovers", "Drains",
                     "Failed"});
  for (const ClusterTrialRow& row : rows) {
    table.row().cell(placement_name(row.policy));
    if (row.distance_m.has_value()) {
      table.cell(*row.distance_m * 100.0, 0);
    } else {
      table.dash();
    }
    table.cell(row.availability * 100.0, 3)
        .cell(row.attack_availability * 100.0, 3)
        .cell(row.p50_ms, 2)
        .cell(row.p99_ms, 2)
        .cell(row.p999_ms, 2)
        .cell(static_cast<std::int64_t>(row.read_failovers))
        .cell(static_cast<std::int64_t>(row.drains))
        .cell(static_cast<std::int64_t>(row.failed));
  }
  return table;
}

}  // namespace deepnote::cluster
