#include "cluster/hybrid.h"

#include <algorithm>
#include <stdexcept>

namespace deepnote::cluster {

const char* tier_mode_name(TierMode mode) {
  switch (mode) {
    case TierMode::kNormal: return "normal";
    case TierMode::kFlashOnly: return "flash-only";
    case TierMode::kDraining: return "draining";
  }
  return "?";
}

storage::FlashConfig HybridConfig::provisioned_flash() {
  storage::FlashConfig cfg;
  // 96 MiB: logical space (after over-provisioning) covers the default
  // 20000 x 4 KiB object span with headroom.
  cfg.blocks = 384;
  // The tier is provisioned for timing/wear realism in fleets; payload
  // bytes are not retained (same convention as cluster HDDs).
  cfg.retain_data = false;
  return cfg;
}

core::DetectorConfig HybridConfig::tier_detector() {
  // Same tuning as the fleet node detector (node.cc): fast baseline,
  // latency factor above the benign shock-blip band, error burst for the
  // hard-failure path.
  core::DetectorConfig config;
  config.baseline_alpha = 0.05;
  config.warmup_ops = 64;
  config.latency_factor = 20.0;
  return config;
}

HybridDevice::HybridDevice(storage::BlockDevice& hdd, HybridConfig config)
    : hdd_(hdd),
      config_(config),
      flash_(config.flash),
      ftl_(flash_, config.ftl),
      detector_(config.detector) {
  if (ftl_.total_sectors() > hdd_.total_sectors()) {
    throw std::invalid_argument("hybrid: flash tier larger than bulk tier");
  }
  const std::uint64_t pages = ftl_.total_sectors() / page_sectors();
  dirty_.assign((pages + 63) / 64, 0);
  page_buf_.resize(std::max<std::size_t>(
      static_cast<std::size_t>(page_sectors()) * storage::kBlockSectorSize,
      static_cast<std::size_t>(config_.probe_sectors) *
          storage::kBlockSectorSize));
}

bool HybridDevice::any_dirty(std::uint64_t lba,
                             std::uint32_t sector_count) const {
  if (dirty_count_ == 0) return false;
  const std::uint64_t first = lba / page_sectors();
  const std::uint64_t last = (lba + sector_count - 1) / page_sectors();
  for (std::uint64_t p = first; p <= last; ++p) {
    if ((dirty_[p >> 6] >> (p & 63)) & 1u) return true;
  }
  return false;
}

void HybridDevice::mark_dirty(std::uint64_t lba, std::uint32_t sector_count) {
  const std::uint64_t first = lba / page_sectors();
  const std::uint64_t last = (lba + sector_count - 1) / page_sectors();
  for (std::uint64_t p = first; p <= last; ++p) {
    const std::uint64_t bit = 1ull << (p & 63);
    if (!(dirty_[p >> 6] & bit)) {
      dirty_[p >> 6] |= bit;
      ++dirty_count_;
    }
  }
}

void HybridDevice::enter(TierMode mode, sim::SimTime now) {
  if (mode_ == mode) return;
  mode_ = mode;
  ++stats_.mode_changes;
  if (mode == TierMode::kFlashOnly) {
    probe_good_ = 0;
    next_probe_at_ = now + config_.probe_interval;
    // Re-arm: the detector must be able to alert again after drain-back.
    detector_.acknowledge();
  }
}

void HybridDevice::observe_hdd(sim::SimTime issued,
                               const storage::BlockIo& io) {
  if (io.ok()) {
    detector_.record_ok(io.complete, (io.complete - issued).seconds());
  } else {
    detector_.record_error(io.complete);
  }
  if (detector_.alerted() && mode_ != TierMode::kFlashOnly) {
    enter(TierMode::kFlashOnly, io.complete);
  }
}

void HybridDevice::maybe_probe(sim::SimTime now) {
  if (now < next_probe_at_) return;
  next_probe_at_ = now + config_.probe_interval;
  ++stats_.probes;
  // Issued as an independent command: the serving op does not wait on it.
  const storage::BlockIo io =
      hdd_.read(now, 0, config_.probe_sectors,
                std::span<std::byte>(page_buf_.data(),
                                     static_cast<std::size_t>(
                                         config_.probe_sectors) *
                                         storage::kBlockSectorSize));
  if (io.ok()) {
    if (++probe_good_ >= config_.probe_good_needed) {
      enter(TierMode::kDraining, now);
    }
  } else {
    probe_good_ = 0;
  }
}

void HybridDevice::drain_some(sim::SimTime now) {
  const std::uint64_t pages = ftl_.total_sectors() / page_sectors();
  for (std::uint32_t n = 0; n < config_.drain_batch; ++n) {
    if (dirty_count_ == 0) {
      enter(TierMode::kNormal, now);
      return;
    }
    // Advance the cursor to the next dirty page (wraps; dirty_count_ > 0
    // guarantees termination).
    while (!((dirty_[drain_cursor_ >> 6] >> (drain_cursor_ & 63)) & 1u)) {
      // Skip whole clean words when aligned.
      if ((drain_cursor_ & 63) == 0 && dirty_[drain_cursor_ >> 6] == 0) {
        drain_cursor_ += 64;
      } else {
        ++drain_cursor_;
      }
      if (drain_cursor_ >= pages) drain_cursor_ = 0;
    }
    const std::uint64_t lba = drain_cursor_ * page_sectors();
    const std::span<std::byte> buf(
        page_buf_.data(),
        static_cast<std::size_t>(page_sectors()) * storage::kBlockSectorSize);
    if (!ftl_.read(now, lba, page_sectors(), buf).ok()) return;
    // Background write-back: not charged to the serving op.
    const storage::BlockIo w = hdd_.write(now, lba, page_sectors(), buf);
    observe_hdd(now, w);
    if (!w.ok()) {
      // Attack resumed mid-drain; the page stays dirty for the next pass.
      enter(TierMode::kFlashOnly, w.complete);
      return;
    }
    dirty_[drain_cursor_ >> 6] &= ~(1ull << (drain_cursor_ & 63));
    --dirty_count_;
    ++stats_.drained_pages;
  }
  if (dirty_count_ == 0) enter(TierMode::kNormal, now);
}

storage::BlockIo HybridDevice::read(sim::SimTime now, std::uint64_t lba,
                                    std::uint32_t sector_count,
                                    std::span<std::byte> out) {
  if (!in_flash_span(lba, sector_count)) {
    const storage::BlockIo io = hdd_.read(now, lba, sector_count, out);
    observe_hdd(now, io);
    return io;
  }
  if (mode_ == TierMode::kFlashOnly) {
    ++stats_.flash_only_ops;
    maybe_probe(now);
    ++stats_.flash_reads;
    return ftl_.read(now, lba, sector_count, out);
  }
  if (mode_ == TierMode::kDraining) drain_some(now);
  if (any_dirty(lba, sector_count)) {
    // The bulk tier is stale for this object; flash is authoritative.
    ++stats_.flash_reads;
    return ftl_.read(now, lba, sector_count, out);
  }
  const storage::BlockIo io = hdd_.read(now, lba, sector_count, out);
  observe_hdd(now, io);
  if (io.ok()) {
    ++stats_.hdd_reads;
    return io;
  }
  // Absorb the HDD failure: the mirror serves the read, starting after
  // the failed attempt (detection only shortens this tail, it does not
  // change the outcome).
  ++stats_.absorbed_errors;
  ++stats_.flash_reads;
  return ftl_.read(io.complete, lba, sector_count, out);
}

storage::BlockIo HybridDevice::write(sim::SimTime now, std::uint64_t lba,
                                     std::uint32_t sector_count,
                                     std::span<const std::byte> in) {
  if (!in_flash_span(lba, sector_count)) {
    const storage::BlockIo io = hdd_.write(now, lba, sector_count, in);
    observe_hdd(now, io);
    return io;
  }
  // Flash first: the ack point. A flash failure is a real device error.
  const storage::BlockIo f = ftl_.write(now, lba, sector_count, in);
  if (!f.ok()) return f;
  if (mode_ == TierMode::kFlashOnly) {
    ++stats_.flash_only_ops;
    mark_dirty(lba, sector_count);
    maybe_probe(now);
    return f;
  }
  if (mode_ == TierMode::kDraining) drain_some(now);
  // Mirror to the bulk tier in parallel; the ack does not wait for it.
  const storage::BlockIo h = hdd_.write(now, lba, sector_count, in);
  observe_hdd(now, h);
  if (!h.ok()) {
    ++stats_.absorbed_errors;
    mark_dirty(lba, sector_count);
  }
  return f;
}

storage::BlockIo HybridDevice::flush(sim::SimTime now) {
  const storage::BlockIo f = ftl_.flush(now);
  if (mode_ != TierMode::kFlashOnly) {
    // Data is already durable on flash, so a bulk-tier flush failure is
    // absorbed like a mirrored write failure.
    const storage::BlockIo h = hdd_.flush(now);
    observe_hdd(now, h);
  }
  return f;
}

}  // namespace deepnote::cluster
