#include "cluster/placement.h"

#include <stdexcept>

namespace deepnote::cluster {

const char* placement_name(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kSamePod: return "same-pod";
    case PlacementPolicy::kCrossPod: return "cross-pod";
    case PlacementPolicy::kRackAware: return "rack-aware";
  }
  return "?";
}

PlacementMap::PlacementMap(ClusterTopology topology, PlacementPolicy policy,
                           std::size_t replication)
    : topology_(topology), policy_(policy), replication_(replication) {
  if (topology_.pods == 0 || topology_.bays_per_pod == 0) {
    throw std::invalid_argument("placement: empty topology");
  }
  if (replication_ == 0) {
    throw std::invalid_argument("placement: replication must be >= 1");
  }
  if (policy_ == PlacementPolicy::kSamePod &&
      replication_ > topology_.bays_per_pod) {
    throw std::invalid_argument(
        "placement: same-pod needs replication <= bays_per_pod");
  }
  if (policy_ != PlacementPolicy::kSamePod && replication_ > topology_.pods) {
    throw std::invalid_argument(
        "placement: spreading policies need replication <= pods");
  }
}

void PlacementMap::replicas(std::uint64_t key, std::vector<NodeId>& out) const {
  out.clear();
  out.reserve(replication_);
  const std::uint64_t h = mix64(key);
  // Independent stream for bay selection so pod and bay choices do not
  // correlate across keys.
  const std::uint64_t h2 = mix64(h);
  switch (policy_) {
    case PlacementPolicy::kSamePod: {
      const std::size_t start_bay = h % topology_.bays_per_pod;
      for (std::size_t r = 0; r < replication_; ++r) {
        out.push_back(topology_.node_id(
            0, (start_bay + r) % topology_.bays_per_pod));
      }
      break;
    }
    case PlacementPolicy::kCrossPod: {
      const std::size_t start_pod = h % topology_.pods;
      for (std::size_t r = 0; r < replication_; ++r) {
        const std::size_t pod = (start_pod + r) % topology_.pods;
        const std::size_t bay = (h2 + r * 0x9e37ull) % topology_.bays_per_pod;
        out.push_back(topology_.node_id(pod, bay));
      }
      break;
    }
    case PlacementPolicy::kRackAware: {
      // Distinct pods like cross-pod, but only the far half of each
      // tower: bay indices count away from the incident wall, so the
      // highest indices see the least acoustic coupling.
      const std::size_t start_pod = h % topology_.pods;
      const std::size_t far_bays = (topology_.bays_per_pod + 1) / 2;
      for (std::size_t r = 0; r < replication_; ++r) {
        const std::size_t pod = (start_pod + r) % topology_.pods;
        const std::size_t bay =
            topology_.bays_per_pod - 1 - ((h2 + r * 0x9e37ull) % far_bays);
        out.push_back(topology_.node_id(pod, bay));
      }
      break;
    }
  }
}

std::vector<NodeId> PlacementMap::replicas(std::uint64_t key) const {
  std::vector<NodeId> out;
  replicas(key, out);
  return out;
}

}  // namespace deepnote::cluster
