// Retry governance primitives: backoff shaping and the cluster-wide
// retry budget.
//
// Retry traffic is the amplifier that turns a transient overload into a
// metastable one (Shahrad et al., PAPERS.md): every failed request
// re-arrives, so offered load *rises* exactly when capacity falls, and
// the system can stay collapsed long after the trigger is gone. The two
// levers here bound that amplification:
//
//  * BackoffConfig shapes the client's re-issue delay. Exponential
//    growth spreads a storm over time; per-client jitter decorrelates
//    the waves (a fixed or linear backoff re-synchronizes every client
//    that failed in the same epoch — the worst possible shape for the
//    measurement this layer exists to study).
//  * RetryBudget is a cluster-wide token bucket in the style of a load
//    balancer's retry budget: fresh requests earn fractional tokens,
//    each retry spends a whole one. Under a storm the bucket empties
//    and retries are denied, pinning the retry rate to a fixed fraction
//    of the fresh-request rate regardless of how bad things get.
//
// Everything is deterministic: backoff jitter consumes caller-supplied
// 64-bit words (one splitmix64 stream per client, forked off the trial
// seed), never a shared RNG, so results are byte-identical at any
// DEEPNOTE_JOBS.
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace deepnote::cluster::resilience {

enum class BackoffKind : std::uint8_t {
  kFixed,        ///< base every attempt (the naive client)
  kLinear,       ///< base * attempt (the PR 7 shape)
  kExponential,  ///< base * 2^(attempt-1), capped
};

const char* backoff_kind_name(BackoffKind kind);

struct BackoffConfig {
  BackoffKind kind = BackoffKind::kExponential;
  sim::Duration base = sim::Duration::from_millis(5.0);
  /// Upper bound on the pre-jitter delay (exponential growth crosses any
  /// cap quickly; fixed/linear are clamped too for uniformity).
  sim::Duration cap = sim::Duration::from_millis(500.0);
  /// Fraction of the delay that is randomized: the delay becomes
  /// d * (1 - jitter + jitter * u), u uniform in [0, 1). 0 = none,
  /// 1 = "full jitter" (uniform over (0, d]).
  double jitter = 0.5;
  /// Retries allowed per request. 0 disables retries entirely;
  /// 0xffffffff is effectively unlimited (the naive client).
  std::uint32_t max_retries = 3;
  /// Retry device failures and deadline misses too, not just sheds.
  bool retry_failures = false;
};

/// Unlimited-retries sentinel for max_retries.
inline constexpr std::uint32_t kUnlimitedRetries = 0xffffffffu;

/// Delay before retry number `attempt` (1-based: the first retry of a
/// request passes attempt = 1). `jitter_word` supplies the randomness;
/// the same word always yields the same delay.
sim::Duration backoff_delay(const BackoffConfig& config, std::uint32_t attempt,
                            std::uint64_t jitter_word);

/// One step of a splitmix64 stream: the per-client jitter source. Seed
/// the state off the trial seed (xor'ed with a client-unique constant)
/// so streams are independent of each other and of the key RNG.
inline std::uint64_t next_jitter_word(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

struct RetryBudgetConfig {
  bool enabled = false;
  /// Tokens earned per fresh (non-retry) request issued.
  double earn_per_request = 0.5;
  /// Bucket capacity (also the starting balance).
  double cap = 32.0;
};

/// Cluster-wide token-bucket retry budget. Single-threaded by design:
/// both earn() and try_spend() run inside the engine's serial
/// closed-loop sections, never on wave shards.
class RetryBudget {
 public:
  RetryBudget() = default;
  explicit RetryBudget(RetryBudgetConfig config) : config_(config) {}

  const RetryBudgetConfig& config() const { return config_; }

  /// Refill to the starting balance and zero the counters.
  void reset() {
    tokens_ = config_.cap;
    spent_ = 0;
    denied_ = 0;
  }

  /// A fresh request was issued: credit the bucket.
  void earn() {
    tokens_ = tokens_ + config_.earn_per_request;
    if (tokens_ > config_.cap) tokens_ = config_.cap;
  }

  /// A retry wants to go out: spend one token or deny it.
  bool try_spend() {
    if (tokens_ < 1.0) {
      ++denied_;
      return false;
    }
    tokens_ -= 1.0;
    ++spent_;
    return true;
  }

  double tokens() const { return tokens_; }
  std::uint64_t spent() const { return spent_; }
  std::uint64_t denied() const { return denied_; }

 private:
  RetryBudgetConfig config_;
  double tokens_ = 0.0;
  std::uint64_t spent_ = 0;
  std::uint64_t denied_ = 0;
};

}  // namespace deepnote::cluster::resilience
