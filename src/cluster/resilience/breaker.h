// Per-replica circuit breakers for the engine's serving mode.
//
// A node whose legs are failing (device errors, deadline expiries) keeps
// absorbing new legs for a full failover round-trip each — queue slots,
// wheel timers and wave work spent learning what the last epoch already
// knew. A breaker short-circuits that: once a node's per-epoch leg
// failure rate crosses the threshold (with a minimum volume so one
// unlucky leg cannot trip it), the breaker opens and subsequent legs to
// that node fail instantly at issue, letting the request fail over to
// the next replica without queueing on the broken one. After a cooldown
// the breaker goes half-open and admits a bounded number of probe legs;
// one failure re-opens it, clean successes close it.
//
// Concurrency contract (matches the engine's epoch discipline): allow()
// and record() run on wave shards but only ever touch state for nodes
// the calling shard owns, so they need no synchronization; transitions
// happen in update(), which the engine calls at the single-threaded
// epoch barrier. State reads during waves see the epoch-start snapshot —
// exactly the control-staleness the engine already accepts everywhere
// else.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace deepnote::cluster::resilience {

enum class BreakerState : std::uint8_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

const char* breaker_state_name(BreakerState state);

struct BreakerConfig {
  bool enabled = false;
  /// Open when (failed legs / total legs) in one epoch reaches this.
  double failure_threshold = 0.5;
  /// Minimum legs observed in the epoch before the rate is meaningful.
  std::uint32_t min_volume = 8;
  /// How long an open breaker blocks before probing (half-open).
  sim::Duration open_cooldown = sim::Duration::from_seconds(1.0);
  /// Legs admitted per epoch while half-open.
  std::uint32_t half_open_probes = 2;
};

struct BreakerBankStats {
  std::uint64_t opens = 0;     ///< closed -> open transitions
  std::uint64_t reopens = 0;   ///< half-open probe failed
  std::uint64_t closes = 0;    ///< half-open probes succeeded
  std::uint64_t short_circuits = 0;  ///< legs denied by an open breaker
};

/// One breaker per node, flat SoA storage. The shard partition handed to
/// reset() must match the engine's (node -> shard is node / nodes_per_shard)
/// so per-shard touched lists stay owner-exclusive during waves.
class BreakerBank {
 public:
  BreakerBank() = default;

  /// Size for `nodes` and forget all state. No-op storage-wise when the
  /// sizes already match (warm replays stay allocation-free).
  void reset(std::size_t nodes, std::size_t shards,
             std::size_t nodes_per_shard, const BreakerConfig& config);

  bool enabled() const { return config_.enabled; }
  const BreakerConfig& config() const { return config_; }
  BreakerState state(std::size_t node) const {
    return static_cast<BreakerState>(state_[node]);
  }

  /// Wave-side: may a leg be sent to `node` right now? Open breakers
  /// deny (counted per shard); half-open breakers admit up to
  /// `half_open_probes` legs per epoch. Owner-exclusive per node.
  bool allow(std::size_t shard, std::size_t node);

  /// Wave-side: terminal leg outcome on `node` (true = device served it
  /// fine, false = device error or deadline expiry). Owner-exclusive.
  void record(std::size_t shard, std::size_t node, bool ok);

  /// Barrier-side: apply this epoch's counters, run the state machine,
  /// clear epoch counters. `now` is the epoch end (cooldown clock).
  void update(sim::SimTime now);

  /// Aggregated counters (sums the per-shard denial counts; call from
  /// single-threaded sections only).
  BreakerBankStats stats() const;

 private:
  void track(std::size_t node);

  BreakerConfig config_;
  std::size_t nodes_per_shard_ = 1;
  std::vector<std::uint8_t> state_;      ///< BreakerState per node
  std::vector<std::uint32_t> epoch_ok_;  ///< legs served this epoch
  std::vector<std::uint32_t> epoch_fail_;
  std::vector<std::uint32_t> probes_admitted_;  ///< half-open, this epoch
  std::vector<std::int64_t> open_until_ns_;
  /// Nodes with any leg outcome this epoch, per shard (owner-exclusive
  /// during waves), flag-deduped; consumed by update().
  std::vector<std::uint8_t> touched_;
  std::vector<std::vector<std::uint32_t>> shard_touched_;
  /// Nodes currently open or half-open (cooldown/probe bookkeeping must
  /// visit them even in epochs with no traffic). Flag-deduped.
  std::vector<std::uint8_t> tracked_flag_;
  std::vector<std::uint32_t> tracked_;
  std::vector<std::uint64_t> shard_short_circuits_;
  std::uint64_t opens_ = 0;
  std::uint64_t reopens_ = 0;
  std::uint64_t closes_ = 0;
};

}  // namespace deepnote::cluster::resilience
