#include "cluster/resilience/retry.h"

#include <algorithm>

namespace deepnote::cluster::resilience {

const char* backoff_kind_name(BackoffKind kind) {
  switch (kind) {
    case BackoffKind::kFixed: return "fixed";
    case BackoffKind::kLinear: return "linear";
    case BackoffKind::kExponential: return "exponential";
  }
  return "?";
}

sim::Duration backoff_delay(const BackoffConfig& config, std::uint32_t attempt,
                            std::uint64_t jitter_word) {
  if (attempt == 0) attempt = 1;
  const double base_s = config.base.seconds();
  const double cap_s = config.cap.ns() > 0 ? config.cap.seconds() : base_s;
  double delay_s = base_s;
  switch (config.kind) {
    case BackoffKind::kFixed:
      break;
    case BackoffKind::kLinear:
      delay_s = base_s * static_cast<double>(attempt);
      break;
    case BackoffKind::kExponential: {
      // Once base * 2^k crosses the cap the doubling stops mattering;
      // shifting by more than 62 would overflow, so clamp the exponent.
      const std::uint32_t shift = std::min<std::uint32_t>(attempt - 1, 62);
      delay_s = base_s * static_cast<double>(std::uint64_t{1} << shift);
      break;
    }
  }
  delay_s = std::min(delay_s, cap_s);
  if (config.jitter > 0.0) {
    // Same u construction as sim::Rng::next_double: the top 53 bits.
    const double u =
        static_cast<double>(jitter_word >> 11) * 0x1.0p-53;
    delay_s *= 1.0 - config.jitter + config.jitter * u;
  }
  // Full jitter can land on (or round to) zero; a zero delay would let a
  // retry re-enter the very round that shed it and livelock the engine's
  // closed-loop stepping, so floor at one simulated nanosecond.
  return sim::Duration::from_nanos(
      std::max<std::int64_t>(sim::Duration::from_seconds(delay_s).ns(), 1));
}

}  // namespace deepnote::cluster::resilience
