#include "cluster/resilience/breaker.h"

#include <algorithm>

namespace deepnote::cluster::resilience {

const char* breaker_state_name(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

void BreakerBank::reset(std::size_t nodes, std::size_t shards,
                        std::size_t nodes_per_shard,
                        const BreakerConfig& config) {
  config_ = config;
  nodes_per_shard_ = nodes_per_shard == 0 ? 1 : nodes_per_shard;
  state_.assign(nodes, static_cast<std::uint8_t>(BreakerState::kClosed));
  epoch_ok_.assign(nodes, 0);
  epoch_fail_.assign(nodes, 0);
  probes_admitted_.assign(nodes, 0);
  open_until_ns_.assign(nodes, 0);
  touched_.assign(nodes, 0);
  shard_touched_.resize(std::max<std::size_t>(shards, 1));
  for (auto& list : shard_touched_) list.clear();
  tracked_flag_.assign(nodes, 0);
  tracked_.clear();
  shard_short_circuits_.assign(std::max<std::size_t>(shards, 1), 0);
  opens_ = reopens_ = closes_ = 0;
}

bool BreakerBank::allow(std::size_t shard, std::size_t node) {
  switch (static_cast<BreakerState>(state_[node])) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      ++shard_short_circuits_[shard];
      return false;
    case BreakerState::kHalfOpen:
      if (probes_admitted_[node] < config_.half_open_probes) {
        ++probes_admitted_[node];
        return true;
      }
      ++shard_short_circuits_[shard];
      return false;
  }
  return true;
}

void BreakerBank::record(std::size_t shard, std::size_t node, bool ok) {
  if (ok) {
    ++epoch_ok_[node];
  } else {
    ++epoch_fail_[node];
  }
  if (!touched_[node]) {
    touched_[node] = 1;
    shard_touched_[shard].push_back(static_cast<std::uint32_t>(node));
  }
}

void BreakerBank::track(std::size_t node) {
  if (!tracked_flag_[node]) {
    tracked_flag_[node] = 1;
    tracked_.push_back(static_cast<std::uint32_t>(node));
  }
}

void BreakerBank::update(sim::SimTime now) {
  // Closed -> open decisions come from this epoch's touched set (only
  // nodes with traffic can trip); the rest of the machine runs over the
  // tracked open/half-open set so cooldowns expire even without traffic.
  for (auto& list : shard_touched_) {
    for (const std::uint32_t node : list) {
      touched_[node] = 0;
      if (static_cast<BreakerState>(state_[node]) == BreakerState::kClosed) {
        const std::uint32_t total = epoch_ok_[node] + epoch_fail_[node];
        if (total >= config_.min_volume &&
            static_cast<double>(epoch_fail_[node]) >=
                config_.failure_threshold * static_cast<double>(total)) {
          state_[node] = static_cast<std::uint8_t>(BreakerState::kOpen);
          open_until_ns_[node] = (now + config_.open_cooldown).ns();
          ++opens_;
          track(node);
        }
        epoch_ok_[node] = 0;
        epoch_fail_[node] = 0;
      }
      // Open/half-open nodes keep their counters for the tracked pass.
    }
    list.clear();
  }
  std::size_t keep = 0;
  for (const std::uint32_t node : tracked_) {
    switch (static_cast<BreakerState>(state_[node])) {
      case BreakerState::kOpen:
        if (now.ns() >= open_until_ns_[node]) {
          state_[node] = static_cast<std::uint8_t>(BreakerState::kHalfOpen);
          probes_admitted_[node] = 0;
        }
        epoch_ok_[node] = 0;
        epoch_fail_[node] = 0;
        tracked_[keep++] = node;
        break;
      case BreakerState::kHalfOpen:
        if (epoch_fail_[node] > 0) {
          // A probe failed: the node is still sick. Back to open.
          state_[node] = static_cast<std::uint8_t>(BreakerState::kOpen);
          open_until_ns_[node] = (now + config_.open_cooldown).ns();
          ++reopens_;
          tracked_[keep++] = node;
        } else if (epoch_ok_[node] > 0) {
          state_[node] = static_cast<std::uint8_t>(BreakerState::kClosed);
          ++closes_;
          tracked_flag_[node] = 0;  // dropped from the tracked set
        } else {
          probes_admitted_[node] = 0;  // no traffic: probe again next epoch
          tracked_[keep++] = node;
        }
        epoch_ok_[node] = 0;
        epoch_fail_[node] = 0;
        break;
      case BreakerState::kClosed:
        tracked_flag_[node] = 0;
        break;
    }
  }
  tracked_.resize(keep);
}

BreakerBankStats BreakerBank::stats() const {
  BreakerBankStats stats;
  stats.opens = opens_;
  stats.reopens = reopens_;
  stats.closes = closes_;
  for (const std::uint64_t count : shard_short_circuits_) {
    stats.short_circuits += count;
  }
  return stats;
}

}  // namespace deepnote::cluster::resilience
