#include "cluster/resilience/chaos.h"

#include <algorithm>
#include <stdexcept>
#include <tuple>

#include "cluster/engine.h"
#include "cluster/node.h"
#include "core/attack.h"
#include "sim/rng.h"
#include "sim/trial_runner.h"

namespace deepnote::cluster::resilience {

const char* chaos_event_kind_name(ChaosEventKind kind) {
  switch (kind) {
    case ChaosEventKind::kNodeCrash: return "node-crash";
    case ChaosEventKind::kNodeRestart: return "node-restart";
    case ChaosEventKind::kDetectorForce: return "detector-force";
    case ChaosEventKind::kDetectorSuppress: return "detector-suppress";
    case ChaosEventKind::kDetectorClear: return "detector-clear";
    case ChaosEventKind::kSlowNode: return "slow-node";
    case ChaosEventKind::kSlowNodeEnd: return "slow-node-end";
    case ChaosEventKind::kPodAttackOn: return "pod-attack-on";
    case ChaosEventKind::kPodAttackOff: return "pod-attack-off";
  }
  return "?";
}

namespace {

/// Event start uniform in [start, end); the paired end event is clamped
/// to the window so every begin has its end inside the run.
sim::SimTime draw_start(sim::Rng& rng, const ChaosConfig& config) {
  const double span_s = (config.end - config.start).seconds();
  return config.start + sim::Duration::from_seconds(rng.uniform(0.0, span_s));
}

sim::SimTime clamp_end(sim::SimTime at, const ChaosConfig& config) {
  return at < config.end ? at : config.end;
}

sim::Duration draw_span(sim::Rng& rng, sim::Duration lo, sim::Duration hi) {
  const double lo_s = lo.seconds();
  const double hi_s = hi.seconds() > lo_s ? hi.seconds() : lo_s;
  return sim::Duration::from_seconds(rng.uniform(lo_s, hi_s));
}

}  // namespace

std::vector<ChaosEvent> make_chaos_schedule(const ChaosConfig& config,
                                            std::uint64_t base_seed,
                                            std::uint64_t index) {
  const bool generated = config.crashes > 0 || config.flaps > 0 ||
                         config.slow_nodes > 0 || config.pod_pulses > 0;
  if (generated) {
    if (config.nodes == 0) {
      throw std::invalid_argument("chaos: nodes must be > 0 for node faults");
    }
    if (!(config.start < config.end)) {
      throw std::invalid_argument("chaos: need start < end to place events");
    }
  }

  std::vector<ChaosEvent> events;
  events.reserve(config.scripted.size() +
                 2 * (config.crashes + config.flaps + config.slow_nodes +
                      config.pod_pulses));

  // One forked stream per fault class, forked in a fixed order, so the
  // schedule for class X is invariant under re-tuning class Y.
  sim::Rng master(sim::trial_seed(base_seed, index) ^ 0xc8a05cul);
  sim::Rng crash_rng = master.fork();
  sim::Rng flap_rng = master.fork();
  sim::Rng slow_rng = master.fork();
  sim::Rng pulse_rng = master.fork();

  for (std::uint32_t i = 0; i < config.crashes; ++i) {
    const auto node = static_cast<std::uint32_t>(
        crash_rng.uniform_int(0, static_cast<std::int64_t>(config.nodes) - 1));
    const sim::SimTime down = draw_start(crash_rng, config);
    const sim::SimTime up =
        clamp_end(down + draw_span(crash_rng, config.crash_min,
                                   config.crash_max), config);
    events.push_back({down, ChaosEventKind::kNodeCrash, node, 0.0});
    events.push_back({up, ChaosEventKind::kNodeRestart, node, 0.0});
  }

  for (std::uint32_t i = 0; i < config.flaps; ++i) {
    const auto node = static_cast<std::uint32_t>(
        flap_rng.uniform_int(0, static_cast<std::int64_t>(config.nodes) - 1));
    const bool force = flap_rng.bernoulli(0.5);
    const sim::SimTime on = draw_start(flap_rng, config);
    const sim::SimTime off =
        clamp_end(on + draw_span(flap_rng, config.flap_min, config.flap_max),
                  config);
    events.push_back({on,
                      force ? ChaosEventKind::kDetectorForce
                            : ChaosEventKind::kDetectorSuppress,
                      node, 0.0});
    events.push_back({off, ChaosEventKind::kDetectorClear, node, 0.0});
  }

  for (std::uint32_t i = 0; i < config.slow_nodes; ++i) {
    const auto node = static_cast<std::uint32_t>(
        slow_rng.uniform_int(0, static_cast<std::int64_t>(config.nodes) - 1));
    const double scale =
        slow_rng.uniform(config.slow_scale_min, config.slow_scale_max);
    const sim::SimTime on = draw_start(slow_rng, config);
    const sim::SimTime off =
        clamp_end(on + draw_span(slow_rng, config.slow_min, config.slow_max),
                  config);
    events.push_back({on, ChaosEventKind::kSlowNode, node, scale});
    events.push_back({off, ChaosEventKind::kSlowNodeEnd, node, 1.0});
  }

  if (config.pod_pulses > 0 && config.pods == 0) {
    throw std::invalid_argument("chaos: pods must be > 0 for pod pulses");
  }
  for (std::uint32_t i = 0; i < config.pod_pulses; ++i) {
    const auto pod = static_cast<std::uint32_t>(
        pulse_rng.uniform_int(0, static_cast<std::int64_t>(config.pods) - 1));
    const double distance = pulse_rng.uniform(config.pulse_distance_min,
                                              config.pulse_distance_max);
    const sim::SimTime on = draw_start(pulse_rng, config);
    const sim::SimTime off =
        clamp_end(on + draw_span(pulse_rng, config.pulse_min, config.pulse_max),
                  config);
    events.push_back({on, ChaosEventKind::kPodAttackOn, pod, distance});
    events.push_back({off, ChaosEventKind::kPodAttackOff, pod, 0.0});
  }

  events.insert(events.end(), config.scripted.begin(), config.scripted.end());

  // Total order so replay (and any-jobs execution) sees one canonical
  // schedule: time, then kind, then target. stable_sort keeps the
  // generation order for full ties (same class, same node, same time).
  std::stable_sort(events.begin(), events.end(),
                   [](const ChaosEvent& a, const ChaosEvent& b) {
                     return std::make_tuple(a.at.ns(),
                                            static_cast<int>(a.kind),
                                            a.target) <
                            std::make_tuple(b.at.ns(),
                                            static_cast<int>(b.kind),
                                            b.target);
                   });
  return events;
}

std::vector<TimelineAction> chaos_actions(const std::vector<ChaosEvent>& events,
                                          ShardedClusterEngine& engine,
                                          Cluster& cluster,
                                          const ChaosConfig& config) {
  std::vector<TimelineAction> actions;
  actions.reserve(events.size());
  ShardedClusterEngine* eng = &engine;
  Cluster* clu = &cluster;
  for (const ChaosEvent& event : events) {
    const std::uint32_t target = event.target;
    const double magnitude = event.magnitude;
    switch (event.kind) {
      case ChaosEventKind::kNodeCrash:
        actions.push_back({event.at, [eng, target](sim::SimTime) {
                             eng->chaos_node_down(target, true);
                           }});
        break;
      case ChaosEventKind::kNodeRestart:
        actions.push_back({event.at, [eng, target](sim::SimTime) {
                             eng->chaos_node_down(target, false);
                           }});
        break;
      case ChaosEventKind::kDetectorForce:
        actions.push_back({event.at, [eng, target](sim::SimTime) {
                             eng->chaos_set_flap(target,
                                                 ChaosFlapMode::kForceDown);
                           }});
        break;
      case ChaosEventKind::kDetectorSuppress:
        actions.push_back({event.at, [eng, target](sim::SimTime) {
                             eng->chaos_set_flap(target,
                                                 ChaosFlapMode::kSuppress);
                           }});
        break;
      case ChaosEventKind::kDetectorClear:
        actions.push_back({event.at, [eng, target](sim::SimTime) {
                             eng->chaos_set_flap(target, ChaosFlapMode::kNone);
                           }});
        break;
      case ChaosEventKind::kSlowNode:
        actions.push_back({event.at, [eng, target, magnitude](sim::SimTime) {
                             eng->chaos_set_service_scale(target, magnitude);
                           }});
        break;
      case ChaosEventKind::kSlowNodeEnd:
        actions.push_back({event.at, [eng, target](sim::SimTime) {
                             eng->chaos_set_service_scale(target, 1.0);
                           }});
        break;
      case ChaosEventKind::kPodAttackOn: {
        core::AttackConfig attack;
        attack.frequency_hz = config.pulse_frequency_hz;
        attack.spl_air_db = config.pulse_spl_air_db;
        attack.distance_m = magnitude;
        attack.start = event.at;
        attack.end = sim::SimTime::infinity();
        actions.push_back({event.at, [clu, target, attack](sim::SimTime t) {
                             clu->apply_attack(target, t, attack);
                           }});
        break;
      }
      case ChaosEventKind::kPodAttackOff:
        actions.push_back({event.at, [clu, target](sim::SimTime t) {
                             clu->stop_attack(target, t);
                           }});
        break;
    }
  }
  return actions;
}

}  // namespace deepnote::cluster::resilience
