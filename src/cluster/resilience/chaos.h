// Deterministic cluster-level chaos injection.
//
// A resilience layer is only as credible as the faults it was tested
// against, and ad-hoc fault injection is unrepeatable by construction.
// This module makes the fault workload a first-class, seed-replayable
// artifact: make_chaos_schedule(config, base_seed, index) is a pure
// function from (seed, index) to a sorted list of timestamped events —
// node crashes/restarts, failure-detector flap windows (forced
// false-positives and suppressed true-positives), slow-node service
// inflation, and pod-scoped acoustic attack pulses. The same
// (seed, index) always yields the same schedule, and because the
// schedule is materialized before the run starts (and applied at the
// engine's single-threaded epoch barriers via TimelineActions), replays
// are byte-identical at any DEEPNOTE_JOBS.
//
// Each fault class draws from its own forked RNG stream, so enabling or
// re-tuning one class never perturbs the event times of another.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace deepnote::cluster {
class Cluster;
class ShardedClusterEngine;
struct TimelineAction;
}  // namespace deepnote::cluster

namespace deepnote::cluster::resilience {

enum class ChaosEventKind : std::uint8_t {
  kNodeCrash = 0,        ///< node hard-down (legs fail instantly)
  kNodeRestart = 1,      ///< paired recovery for a crash
  kDetectorForce = 2,    ///< flap false-positive: force node drained
  kDetectorSuppress = 3, ///< flap false-negative: suppress drain
  kDetectorClear = 4,    ///< end of a flap window
  kSlowNode = 5,         ///< service-time inflation begins
  kSlowNodeEnd = 6,      ///< inflation ends (scale back to 1.0)
  kPodAttackOn = 7,      ///< acoustic attack pulse on a pod begins
  kPodAttackOff = 8,     ///< pulse ends
};

const char* chaos_event_kind_name(ChaosEventKind kind);

/// Failure-detector override while a flap window is active.
enum class ChaosFlapMode : std::uint8_t {
  kNone = 0,       ///< detector behaves normally
  kForceDown = 1,  ///< false-positive: detector drains a healthy node
  kSuppress = 2,   ///< false-negative: detector never drains the node
};

struct ChaosEvent {
  sim::SimTime at = sim::SimTime::zero();
  ChaosEventKind kind = ChaosEventKind::kNodeCrash;
  /// Node index for node-scoped kinds, pod index for pod-scoped kinds.
  std::uint32_t target = 0;
  /// Kind-specific knob: service-time scale for kSlowNode, attack
  /// distance (m) for kPodAttackOn; unused otherwise.
  double magnitude = 0.0;
};

/// What to generate. Counts are events over the [start, end) window;
/// a count of zero disables that fault class entirely.
struct ChaosConfig {
  sim::SimTime start = sim::SimTime::zero();
  sim::SimTime end = sim::SimTime::zero();
  std::size_t nodes = 0;
  std::size_t pods = 0;

  /// Crash/restart pairs: node down for [crash_min, crash_max).
  std::uint32_t crashes = 0;
  sim::Duration crash_min = sim::Duration::from_seconds(2.0);
  sim::Duration crash_max = sim::Duration::from_seconds(10.0);

  /// Detector flap windows; each is force (false-positive) or suppress
  /// (false-negative) with probability 1/2, lasting [flap_min, flap_max).
  std::uint32_t flaps = 0;
  sim::Duration flap_min = sim::Duration::from_seconds(1.0);
  sim::Duration flap_max = sim::Duration::from_seconds(5.0);

  /// Slow-node windows: service times scaled by [slow_scale_min,
  /// slow_scale_max) for [slow_min, slow_max).
  std::uint32_t slow_nodes = 0;
  double slow_scale_min = 2.0;
  double slow_scale_max = 8.0;
  sim::Duration slow_min = sim::Duration::from_seconds(2.0);
  sim::Duration slow_max = sim::Duration::from_seconds(10.0);

  /// Pod-scoped acoustic pulses: attack at [pulse_distance_min,
  /// pulse_distance_max) meters for [pulse_min, pulse_max).
  std::uint32_t pod_pulses = 0;
  double pulse_distance_min = 0.01;
  double pulse_distance_max = 0.05;
  sim::Duration pulse_min = sim::Duration::from_seconds(1.0);
  sim::Duration pulse_max = sim::Duration::from_seconds(5.0);
  double pulse_frequency_hz = 650.0;
  double pulse_spl_air_db = 140.0;

  /// Explicit extra events appended after generation (deterministic
  /// scripted faults, e.g. the overload experiment's attack pulses).
  std::vector<ChaosEvent> scripted;
};

/// Pure: (config, base_seed, index) -> schedule sorted by (at, kind,
/// target). Replaying with the same inputs yields the identical vector.
std::vector<ChaosEvent> make_chaos_schedule(const ChaosConfig& config,
                                            std::uint64_t base_seed,
                                            std::uint64_t index);

/// Lower a schedule onto a run: one TimelineAction per event, firing at
/// the engine's epoch barrier. `engine` and `cluster` must outlive the
/// returned actions.
std::vector<TimelineAction> chaos_actions(const std::vector<ChaosEvent>& events,
                                          ShardedClusterEngine& engine,
                                          Cluster& cluster,
                                          const ChaosConfig& config);

}  // namespace deepnote::cluster::resilience
