// Brownout controller: graceful degradation by priority class.
//
// When the serving plane saturates, shedding *uniformly* (full queues
// bouncing whoever arrives next) costs high-priority traffic exactly as
// much as low-priority. A brownout controller makes the choice
// explicit: requests carry a deterministic priority class, and when the
// deadline-miss EWMA or the epoch queue depth crosses a threshold, the
// controller escalates — shedding the lowest class first, then the next
// — and de-escalates through a lower clear threshold (hysteresis, so
// the shed level does not flap at the boundary).
//
// The controller is pure epoch-level control state: update() runs at
// the single-threaded barrier, should_shed() during the (serial)
// closed-loop issue rounds. Class assignment is a hash of the client
// id, so a client's priority is stable for the whole run and identical
// at any DEEPNOTE_JOBS.
#pragma once

#include <cstdint>

namespace deepnote::cluster::resilience {

struct BrownoutConfig {
  bool enabled = false;
  /// Number of priority classes; class 0 is shed first, the top class
  /// (classes - 1) is never shed.
  std::uint32_t classes = 4;
  /// EWMA smoothing for the per-epoch deadline-miss fraction.
  double ewma_alpha = 0.3;
  /// Escalate (shed one more class) when the miss EWMA reaches this.
  double shed_threshold = 0.2;
  /// De-escalate when the miss EWMA falls below this (hysteresis).
  double clear_threshold = 0.05;
  /// Also escalate when the epoch max queue depth reaches this
  /// (0 disables the depth signal).
  std::uint64_t depth_threshold = 0;
};

class BrownoutController {
 public:
  BrownoutController() = default;

  void reset(const BrownoutConfig& config) {
    config_ = config;
    if (config_.classes < 2) config_.classes = 2;
    miss_ewma_ = 0.0;
    shed_classes_ = 0;
    escalations_ = 0;
  }

  bool enabled() const { return config_.enabled; }
  const BrownoutConfig& config() const { return config_; }

  /// Stable priority class for a client (0 = lowest priority).
  std::uint32_t class_of(std::uint64_t client) const {
    // splitmix64 finalizer: uniform spread over classes regardless of
    // how client ids cluster.
    std::uint64_t z = client + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    return static_cast<std::uint32_t>(z % config_.classes);
  }

  /// Is this class currently browned out?
  bool should_shed(std::uint32_t priority_class) const {
    return priority_class < shed_classes_;
  }

  /// Barrier-side: feed one epoch's totals and move the shed level.
  /// `requests` counts everything offered this epoch (including
  /// brownout sheds), `misses` the deadline expiries among them.
  void update(std::uint64_t requests, std::uint64_t misses,
              std::uint64_t max_depth) {
    if (requests > 0) {
      const double miss_frac =
          static_cast<double>(misses) / static_cast<double>(requests);
      miss_ewma_ += config_.ewma_alpha * (miss_frac - miss_ewma_);
    }
    const bool depth_high = config_.depth_threshold > 0 &&
                            max_depth >= config_.depth_threshold;
    if (miss_ewma_ >= config_.shed_threshold || depth_high) {
      if (shed_classes_ + 1 < config_.classes) {
        ++shed_classes_;
        ++escalations_;
      }
    } else if (miss_ewma_ < config_.clear_threshold && !depth_high &&
               shed_classes_ > 0) {
      --shed_classes_;
    }
  }

  std::uint32_t shed_classes() const { return shed_classes_; }
  double miss_ewma() const { return miss_ewma_; }
  std::uint64_t escalations() const { return escalations_; }

 private:
  BrownoutConfig config_;
  double miss_ewma_ = 0.0;
  std::uint32_t shed_classes_ = 0;
  std::uint64_t escalations_ = 0;
};

}  // namespace deepnote::cluster::resilience
