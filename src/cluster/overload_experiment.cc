#include "cluster/overload_experiment.h"

#include <algorithm>
#include <string>
#include <utility>

#include "cluster/resilience/chaos.h"
#include "sim/trial_runner.h"

namespace deepnote::cluster {

const char* overload_policy_name(OverloadPolicy policy) {
  switch (policy) {
    case OverloadPolicy::kNaive: return "naive";
    case OverloadPolicy::kGoverned: return "governed";
  }
  return "?";
}

OverloadExperimentConfig overload_experiment_config(double scale) {
  OverloadExperimentConfig config;
  // 1800 req/s across 4096 clients (~2.3 s no-load think time): ~70%
  // fleet utilization at baseline, but the moment two pods degrade the
  // surviving pod is over capacity and queues pin at the limit. The
  // population size is what makes the collapse *sustainable*: during a
  // retry storm each client's cycle is roughly deadline + backoff
  // (~0.55 s naive), so the population alone can offer ~7k legs/s —
  // over the recovered fleet's full capacity, which is the metastable
  // sustain condition (load from retries alone exceeds capacity even
  // after the trigger clears).
  config.traffic.arrival_rate_per_s = 1800.0;
  config.clients = 4096;
  // A tight deadline makes queue wait (not device health) the failure
  // mode: at 128 queued ops a healthy drive is ~1 s behind, double the
  // deadline, so a full queue serves nothing but dead requests.
  config.balancer.request_deadline = sim::Duration::from_millis(500.0);

  config.naive_backoff.kind = resilience::BackoffKind::kFixed;
  config.naive_backoff.base = sim::Duration::from_millis(50.0);
  config.naive_backoff.cap = sim::Duration::from_millis(50.0);
  config.naive_backoff.jitter = 0.0;
  config.naive_backoff.max_retries = resilience::kUnlimitedRetries;
  config.naive_backoff.retry_failures = true;

  config.governed_backoff.kind = resilience::BackoffKind::kExponential;
  config.governed_backoff.base = sim::Duration::from_millis(10.0);
  config.governed_backoff.cap = sim::Duration::from_seconds(1.0);
  config.governed_backoff.jitter = 1.0;  // full jitter: decorrelate waves
  config.governed_backoff.max_retries = 6;
  config.governed_backoff.retry_failures = true;

  config.governed_budget.enabled = true;
  config.governed_budget.earn_per_request = 0.5;
  config.governed_budget.cap = 32.0;

  config.warmup = sim::Duration::from_seconds(5.0 * scale);
  config.observe = sim::Duration::from_seconds(600.0 * scale);
  return config;
}

namespace {

OverloadTrialRow make_overload_row(const OverloadExperimentConfig& config,
                                   OverloadPolicy policy, bool breaker_on,
                                   sim::Duration attack,
                                   const EngineReport& report,
                                   const SloTracker& slo) {
  OverloadTrialRow row;
  row.policy = policy;
  row.breaker_on = breaker_on;
  row.attack = attack;
  row.requests = report.traffic.requests;
  row.retries = report.serving.client_retries;
  row.attack_availability = slo.focus_availability();
  row.retry_budget_spent = report.serving.retry_budget_spent;
  row.retry_budget_denied = report.serving.retry_budget_denied;
  row.breaker_opens = report.serving.breaker_opens;
  row.breaker_short_circuits = report.serving.breaker_short_circuits;
  row.legs_cancelled = report.serving.legs_cancelled;
  row.max_queue_depth = report.serving.max_queue_depth;
  row.drains = report.stats.drains;

  // Post-attack accounting straight off the SLO's fixed windows. The
  // recovery clock stops at the END of the first window at/above the
  // threshold — a conservative, window-granular reading.
  const sim::SimTime attack_off = sim::SimTime::zero() + config.warmup + attack;
  const std::int64_t window_ns = slo.config().window.ns();
  const std::vector<SloTracker::Window>& windows = slo.windows();
  std::uint64_t post_ok = 0;
  std::uint64_t post_fail = 0;
  row.recovery_s = config.observe.seconds();
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const std::int64_t begin_ns =
        slo.start().ns() + static_cast<std::int64_t>(i) * window_ns;
    if (begin_ns < attack_off.ns()) continue;
    const SloTracker::Window& w = windows[i];
    post_ok += w.ok;
    post_fail += w.fail;
    if (w.ok + w.fail == 0) continue;  // no arrivals: says nothing
    const double avail = w.availability();
    if (avail < config.collapsed_availability) ++row.collapsed_windows;
    if (!row.recovered && avail >= config.recovered_availability) {
      row.recovered = true;
      row.recovery_s =
          static_cast<double>(begin_ns + window_ns - attack_off.ns()) * 1e-9;
    }
  }
  const std::uint64_t post_total = post_ok + post_fail;
  row.post_availability =
      post_total == 0
          ? 1.0
          : static_cast<double>(post_ok) / static_cast<double>(post_total);
  return row;
}

}  // namespace

OverloadTrialRow run_overload_cell(const OverloadExperimentConfig& config,
                                   OverloadPolicy policy, bool breaker_on,
                                   sim::Duration attack,
                                   std::uint64_t cell_seed,
                                   std::shared_ptr<const ZipfAliasSampler> zipf,
                                   unsigned engine_jobs) {
  ClusterConfig cluster_config;
  cluster_config.scenario = config.scenario;
  cluster_config.topology = config.topology;
  cluster_config.seed = sim::trial_seed(cell_seed, 0);
  Cluster cluster(cluster_config);

  const sim::SimTime start = sim::SimTime::zero();
  const sim::SimTime attack_on = start + config.warmup;
  const sim::SimTime attack_off = attack_on + attack;

  EngineConfig engine_config;
  engine_config.balancer = config.balancer;
  engine_config.balancer.policy = config.placement;
  engine_config.balancer.replication = config.replication;
  engine_config.traffic = config.traffic;
  engine_config.traffic.duration = config.warmup + attack + config.observe;
  engine_config.traffic.seed = sim::trial_seed(cell_seed, 1);
  engine_config.detector = cluster.config().detector;
  engine_config.jobs = engine_jobs;
  engine_config.zipf = std::move(zipf);
  engine_config.serving.enabled = true;
  engine_config.serving.closed_loop = true;
  engine_config.serving.clients = config.clients;
  engine_config.serving.server.queue_limit = config.queue_limit;
  engine_config.serving.server.admission = config.admission;
  if (policy == OverloadPolicy::kNaive) {
    engine_config.serving.backoff = config.naive_backoff;
    engine_config.serving.retry_budget.enabled = false;
    // The wasted-work ingredient: expired requests still burn device
    // time, so during a storm the fleet is 100% busy serving requests
    // nobody is waiting for.
    engine_config.serving.server.drop_expired = false;
  } else {
    engine_config.serving.backoff = config.governed_backoff;
    engine_config.serving.retry_budget = config.governed_budget;
    engine_config.serving.server.drop_expired = true;
  }
  engine_config.breaker = config.breaker;
  engine_config.breaker.enabled = breaker_on;

  ShardedClusterEngine engine(cluster.topology(), cluster.device_pointers(),
                              std::move(engine_config));

  // The attack rides the chaos schedule: scripted pod pulses, lowered
  // onto epoch barriers exactly like randomized chaos would be.
  resilience::ChaosConfig chaos;
  chaos.nodes = cluster.topology().nodes();
  chaos.pods = cluster.topology().pods;
  chaos.pulse_frequency_hz = config.frequency_hz;
  chaos.pulse_spl_air_db = config.spl_air_db;
  for (const std::size_t pod : config.attacked_pods) {
    chaos.scripted.push_back(
        {attack_on, resilience::ChaosEventKind::kPodAttackOn,
         static_cast<std::uint32_t>(pod), config.attack_distance_m});
    chaos.scripted.push_back({attack_off,
                              resilience::ChaosEventKind::kPodAttackOff,
                              static_cast<std::uint32_t>(pod), 0.0});
  }
  const std::vector<resilience::ChaosEvent> schedule =
      resilience::make_chaos_schedule(chaos, cell_seed, 2);
  std::vector<TimelineAction> actions =
      resilience::chaos_actions(schedule, engine, cluster, chaos);

  SloTracker slo(start);
  slo.set_focus(attack_on, attack_off);
  const EngineReport report = engine.run(start, slo, std::move(actions));
  return make_overload_row(config, policy, breaker_on, attack, report, slo);
}

std::vector<OverloadTrialRow> run_overload_experiment(
    const OverloadExperimentConfig& config) {
  struct Cell {
    OverloadPolicy policy;
    bool breaker_on;
    sim::Duration attack;
  };
  std::vector<Cell> grid;
  grid.reserve(config.policies.size() * config.breaker_settings.size() *
               config.attack_durations.size());
  for (const OverloadPolicy policy : config.policies) {
    for (const bool breaker_on : config.breaker_settings) {
      for (const sim::Duration attack : config.attack_durations) {
        grid.push_back({policy, breaker_on, attack});
      }
    }
  }
  const auto zipf = std::make_shared<const ZipfAliasSampler>(
      config.traffic.keyspace, config.traffic.zipf_theta);
  return sim::run_trials<OverloadTrialRow>(
      grid.size(), config.jobs, [&](std::size_t i) {
        return run_overload_cell(config, grid[i].policy, grid[i].breaker_on,
                                 grid[i].attack,
                                 sim::trial_seed(config.seed, i), zipf);
      });
}

sim::Table build_overload_recovery_table(
    const OverloadExperimentConfig& config,
    const std::vector<OverloadTrialRow>& rows) {
  sim::Table table(
      "Overload recovery vs. retry governance (two-pod " +
      sim::format_fixed(config.frequency_hz, 0) + " Hz / " +
      sim::format_fixed(config.spl_air_db, 0) + " dB pulse, " +
      std::to_string(config.topology.pods) + " pods x " +
      std::to_string(config.topology.bays_per_pod) + " bays, " +
      std::to_string(config.clients) + " closed-loop clients)");
  table.set_columns({"Policy", "Breaker", "Attack s", "Requests", "Retries",
                     "Attack avail %", "Post avail %", "Recovery s",
                     "Collapsed", "Budget spent", "Budget denied", "Opens",
                     "Short circ", "Cancelled", "Max depth", "Drains"});
  for (const OverloadTrialRow& row : rows) {
    table.row()
        .cell(overload_policy_name(row.policy))
        .cell(row.breaker_on ? "on" : "off")
        .cell(row.attack.seconds(), 0)
        .cell(static_cast<std::int64_t>(row.requests))
        .cell(static_cast<std::int64_t>(row.retries))
        .cell(row.attack_availability * 100.0, 3)
        .cell(row.post_availability * 100.0, 3);
    if (row.recovered) {
      table.cell(row.recovery_s, 2);
    } else {
      table.dash();  // never recovered inside the observation window
    }
    table.cell(static_cast<std::int64_t>(row.collapsed_windows))
        .cell(static_cast<std::int64_t>(row.retry_budget_spent))
        .cell(static_cast<std::int64_t>(row.retry_budget_denied))
        .cell(static_cast<std::int64_t>(row.breaker_opens))
        .cell(static_cast<std::int64_t>(row.breaker_short_circuits))
        .cell(static_cast<std::int64_t>(row.legs_cancelled))
        .cell(static_cast<std::int64_t>(row.max_queue_depth))
        .cell(static_cast<std::int64_t>(row.drains));
  }
  return table;
}

}  // namespace deepnote::cluster
