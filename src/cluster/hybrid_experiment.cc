#include "cluster/hybrid_experiment.h"

#include <string>
#include <utility>

#include "cluster/engine.h"
#include "core/attack.h"
#include "hdd/smart.h"
#include "sim/trial_runner.h"

namespace deepnote::cluster {

HybridExperimentConfig hybrid_experiment_config(double scale) {
  HybridExperimentConfig config;
  // Same offered load as the availability experiment: below drive
  // saturation at baseline, so the grid measures attack response, not
  // queueing.
  config.traffic.arrival_rate_per_s = 400.0;
  config.warmup = sim::Duration::from_seconds(10.0 * scale);
  config.attack_window = sim::Duration::from_seconds(40.0 * scale);
  config.cooldown = sim::Duration::from_seconds(10.0 * scale);
  return config;
}

HybridTrialRow run_hybrid_cell(const HybridExperimentConfig& config,
                               NodeType node_type,
                               std::optional<double> distance_m,
                               double attack_multiplier,
                               std::uint64_t cell_seed,
                               std::shared_ptr<const ZipfAliasSampler> zipf,
                               unsigned engine_jobs) {
  ClusterConfig cluster_config;
  cluster_config.scenario = config.scenario;
  cluster_config.topology = config.topology;
  cluster_config.node_type = node_type;
  cluster_config.hybrid = config.hybrid;
  cluster_config.seed = sim::trial_seed(cell_seed, 0);
  Cluster cluster(cluster_config);

  const sim::Duration window = sim::Duration::from_seconds(
      config.attack_window.seconds() * attack_multiplier);

  BalancerConfig balancer = config.balancer;
  balancer.policy = config.policy;
  balancer.replication = config.replication;
  TrafficConfig traffic = config.traffic;
  traffic.duration = config.warmup + window + config.cooldown;
  traffic.seed = sim::trial_seed(cell_seed, 1);

  const sim::SimTime attack_on = sim::SimTime::zero() + config.warmup;
  const sim::SimTime attack_off = attack_on + window;
  SloTracker slo(sim::SimTime::zero());
  slo.set_focus(attack_on, attack_off);

  std::vector<TimelineAction> actions;
  if (distance_m.has_value()) {
    core::AttackConfig attack;
    attack.frequency_hz = config.frequency_hz;
    attack.spl_air_db = config.spl_air_db;
    attack.distance_m = *distance_m;
    attack.start = attack_on;
    attack.end = attack_off;
    const std::size_t pod = config.attacked_pod;
    Cluster* target = &cluster;
    actions.push_back({attack_on, [target, pod, attack](sim::SimTime t) {
                         target->apply_attack(pod, t, attack);
                       }});
    actions.push_back({attack_off, [target, pod](sim::SimTime t) {
                         target->stop_attack(pod, t);
                       }});
  }

  EngineConfig engine_config;
  engine_config.balancer = balancer;
  engine_config.traffic = traffic;
  engine_config.detector = cluster.config().detector;
  engine_config.jobs = engine_jobs;
  engine_config.zipf = std::move(zipf);
  ShardedClusterEngine engine(cluster.topology(), cluster.device_pointers(),
                              std::move(engine_config));
  const EngineReport report =
      engine.run(sim::SimTime::zero(), slo, std::move(actions));

  HybridTrialRow row;
  row.node_type = node_type;
  row.distance_m = distance_m;
  row.attack_multiplier = attack_multiplier;
  row.requests = report.traffic.requests;
  row.failed = slo.failed();
  row.availability = slo.availability();
  row.attack_availability = slo.focus_availability();
  row.p50_ms = slo.p50().millis();
  row.p99_ms = slo.p99().millis();
  row.read_failovers = report.stats.read_failovers;
  row.drains = report.stats.drains;
  for (NodeId id = 0; id < cluster.num_nodes(); ++id) {
    const HybridDevice* tier = cluster.hybrid(id);
    if (tier == nullptr) continue;
    const HybridStats& s = tier->stats();
    row.absorbed_errors += s.absorbed_errors;
    row.flash_only_ops += s.flash_only_ops;
    row.drained_pages += s.drained_pages;
    row.probes += s.probes;
    row.dirty_pages_left += tier->dirty_pages();
    const hdd::SmartAttribute wear = hdd::media_wearout_attribute(
        tier->flash().mean_erase_count(),
        tier->flash().config().rated_erase_cycles);
    row.media_wearout = std::min(row.media_wearout, wear.normalized);
  }
  return row;
}

std::vector<HybridTrialRow> run_hybrid_experiment(
    const HybridExperimentConfig& config) {
  struct Cell {
    NodeType node_type;
    std::optional<double> distance_m;
    double multiplier;
  };
  std::vector<Cell> grid;
  for (const NodeType node_type : config.node_types) {
    for (const auto& distance : config.distances_m) {
      for (const double multiplier : config.attack_multipliers) {
        // A baseline's length is not interesting; keep one row per type.
        if (!distance.has_value() && multiplier != 1.0) continue;
        grid.push_back({node_type, distance, multiplier});
      }
    }
  }
  const auto zipf = std::make_shared<const ZipfAliasSampler>(
      config.traffic.keyspace, config.traffic.zipf_theta);
  return sim::run_trials<HybridTrialRow>(
      grid.size(), config.jobs, [&](std::size_t i) {
        return run_hybrid_cell(config, grid[i].node_type,
                               grid[i].distance_m, grid[i].multiplier,
                               sim::trial_seed(config.seed, i), zipf);
      });
}

sim::Table build_hybrid_availability_table(
    const HybridExperimentConfig& config,
    const std::vector<HybridTrialRow>& rows) {
  sim::Table table(
      "Hybrid tiering availability under a single-pod " +
      sim::format_fixed(config.frequency_hz, 0) + " Hz / " +
      sim::format_fixed(config.spl_air_db, 0) + " dB attack (" +
      std::to_string(config.topology.pods) + " pods x " +
      std::to_string(config.topology.bays_per_pod) + " bays, " +
      placement_name(config.policy) + " R=" +
      std::to_string(config.replication) + ")");
  table.set_columns({"Node", "Distance (cm)", "Attack x", "Avail %",
                     "Attack avail %", "p50 ms", "p99 ms", "Absorbed",
                     "Flash-only", "Drained", "Probes", "Dirty left",
                     "Wearout", "Failovers", "Drains", "Failed"});
  for (const HybridTrialRow& row : rows) {
    table.row().cell(node_type_name(row.node_type));
    if (row.distance_m.has_value()) {
      table.cell(*row.distance_m * 100.0, 0);
    } else {
      table.dash();
    }
    table.cell(row.attack_multiplier, 1)
        .cell(row.availability * 100.0, 3)
        .cell(row.attack_availability * 100.0, 3)
        .cell(row.p50_ms, 2)
        .cell(row.p99_ms, 2)
        .cell(static_cast<std::int64_t>(row.absorbed_errors))
        .cell(static_cast<std::int64_t>(row.flash_only_ops))
        .cell(static_cast<std::int64_t>(row.drained_pages))
        .cell(static_cast<std::int64_t>(row.probes))
        .cell(static_cast<std::int64_t>(row.dirty_pages_left))
        .cell(static_cast<std::int64_t>(row.media_wearout))
        .cell(static_cast<std::int64_t>(row.read_failovers))
        .cell(static_cast<std::int64_t>(row.drains))
        .cell(static_cast<std::int64_t>(row.failed));
  }
  return table;
}

}  // namespace deepnote::cluster
