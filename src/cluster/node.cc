#include "cluster/node.h"

#include <stdexcept>

#include "sim/trial_runner.h"

namespace deepnote::cluster {

const char* node_type_name(NodeType type) {
  switch (type) {
    case NodeType::kHdd: return "hdd";
    case NodeType::kHybrid: return "hybrid";
  }
  return "?";
}

const char* health_name(NodeHealth health) {
  switch (health) {
    case NodeHealth::kHealthy: return "healthy";
    case NodeHealth::kDegraded: return "degraded";
    case NodeHealth::kDrained: return "drained";
  }
  return "?";
}

ClusterNode::ClusterNode(NodeId id, std::size_t pod, std::size_t bay,
                         storage::BlockDevice& device,
                         core::DetectorConfig detector)
    : id_(id), pod_(pod), bay_(bay), device_(device), detector_(detector) {}

void ClusterNode::mark_degraded(sim::SimTime now) {
  if (health_ == NodeHealth::kHealthy) {
    health_ = NodeHealth::kDegraded;
    drained_at_ = now;  // timeline: when the detector pulled it from full duty
  }
}

void ClusterNode::drain(sim::SimTime now) {
  if (health_ != NodeHealth::kDrained) {
    health_ = NodeHealth::kDrained;
    drained_at_ = now;
  }
}

void ClusterNode::readmit(sim::SimTime now) {
  health_ = NodeHealth::kHealthy;
  readmitted_at_ = now;
  detector_.acknowledge();
}

void ClusterNode::observe(sim::SimTime issued, const storage::BlockIo& io) {
  if (io.ok()) {
    detector_.record_ok(io.complete, (io.complete - issued).seconds());
  } else {
    detector_.record_error(io.complete);
    ++stats_.errors;
  }
}

storage::BlockIo ClusterNode::read(sim::SimTime now, std::uint64_t lba,
                                   std::uint32_t sector_count,
                                   std::span<std::byte> out) {
  ++stats_.reads;
  const storage::BlockIo io = device_.read(now, lba, sector_count, out);
  observe(now, io);
  return io;
}

storage::BlockIo ClusterNode::write(sim::SimTime now, std::uint64_t lba,
                                    std::uint32_t sector_count,
                                    std::span<const std::byte> in) {
  ++stats_.writes;
  const storage::BlockIo io = device_.write(now, lba, sector_count, in);
  observe(now, io);
  return io;
}

storage::OsDeviceConfig datacenter_os_device() {
  storage::OsDeviceConfig config;
  config.command_timeout = sim::Duration::from_millis(150.0);
  config.attempts = 2;
  return config;
}

core::DetectorConfig ClusterConfig::fleet_detector() {
  core::DetectorConfig config;
  // A fleet baselines a node in dozens of ops, but the baseline EWMA
  // must have actually converged by the end of warmup or seek-time
  // variance trips the latency factor on healthy nodes: alpha 0.05 puts
  // the baseline within ~4% of the true mean after 64 ops.
  config.baseline_alpha = 0.05;
  config.warmup_ops = 64;
  // Drives take benign ~200 ms shock-sensor false trips; one such blip
  // lifts the recent EWMA to ~8-13x a healthy ~6 ms baseline. Draining
  // a node needs *persistent* elevation (several consecutive ops at
  // timeout latency — the parked-head signature), so the fleet factor
  // sits above the single-blip band. Hard failures still drain through
  // the error-burst rule immediately.
  config.latency_factor = 20.0;
  return config;
}

Cluster::Cluster(ClusterConfig config) : config_(config) {
  const ClusterTopology& topo = config_.topology;
  if (topo.pods == 0 || topo.bays_per_pod == 0) {
    throw std::invalid_argument("cluster: empty topology");
  }
  for (std::size_t pod = 0; pod < topo.pods; ++pod) {
    core::RackConfig rack;
    rack.scenario = config_.scenario;
    rack.bays = topo.bays_per_pod;
    rack.seed = sim::trial_seed(config_.seed, pod);
    rack.os_device = config_.os_device;
    // Traffic serving is timing/availability-only: no backing bytes.
    rack.retain_data = false;
    pods_.emplace_back(rack);
    for (std::size_t bay = 0; bay < topo.bays_per_pod; ++bay) {
      storage::BlockDevice* device = &pods_.back().device(bay);
      if (config_.node_type == NodeType::kHybrid) {
        // The flash tier fronts the bay's HDD; the node serves through it.
        hybrids_.emplace_back(*device, config_.hybrid);
        device = &hybrids_.back();
      }
      nodes_.emplace_back(topo.node_id(pod, bay), pod, bay, *device,
                          config_.detector);
    }
  }
}

std::vector<ClusterNode*> Cluster::node_pointers() {
  std::vector<ClusterNode*> out;
  out.reserve(nodes_.size());
  for (auto& node : nodes_) out.push_back(&node);
  return out;
}

std::vector<storage::BlockDevice*> Cluster::device_pointers() {
  std::vector<storage::BlockDevice*> out;
  out.reserve(nodes_.size());
  for (auto& node : nodes_) out.push_back(&node.device());
  return out;
}

void Cluster::apply_attack(std::size_t pod, sim::SimTime now,
                           const core::AttackConfig& attack) {
  pods_.at(pod).apply_attack(now, attack);
}

void Cluster::stop_attack(std::size_t pod, sim::SimTime now) {
  pods_.at(pod).stop_attack(now);
}

std::size_t Cluster::parked_nodes() const {
  std::size_t n = 0;
  for (const auto& pod : pods_) n += pod.parked_bays();
  return n;
}

}  // namespace deepnote::cluster
