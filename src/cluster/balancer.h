// Health-checked replica selection with failover, hedged reads, a retry
// budget, and detector-driven drain/readmit — the control loop that
// turns per-node detector alerts into an automatic routing action.
//
// Reads try replicas in health-ranked placement order, failing over on
// error while a token-bucket retry budget lasts (a storm of failing
// primaries must not double the fleet's load). A read whose chosen
// node is running hot (detector recent-latency EWMA above the hedge
// threshold) is hedged: issued to the next replica too, first success
// wins. Writes go to every in-rotation replica and succeed on a
// majority quorum.
//
// When a node's detector alerts, the balancer drains it (out of
// rotation) and probes it on an interval; a probe served fast readmits
// the node. This is the paper's missing mitigation half: detection
// (core/detector.h) feeding an automatic drain + re-route instead of a
// report line.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cluster/node.h"
#include "cluster/placement.h"

namespace deepnote::cluster {

struct BalancerConfig {
  PlacementPolicy policy = PlacementPolicy::kCrossPod;
  std::size_t replication = 3;
  /// Successful members required to ack a write; 0 = majority of
  /// `replication`.
  std::size_t write_quorum = 0;
  /// A request that cannot complete by arrival + deadline fails.
  sim::Duration request_deadline = sim::Duration::from_seconds(2.0);
  /// Hedge a read when the chosen node's recent-latency EWMA is above
  /// this (zero disables hedging).
  sim::Duration hedge_threshold = sim::Duration::from_millis(40.0);
  /// Failover retries spend from a token bucket refilled by this many
  /// tokens per request, capped at `retry_budget_cap`. Sized so the
  /// steady failover rate of one fully-lost pod (every read whose
  /// primary lived there, 1/pods of traffic) fits inside the budget;
  /// what it guards against is unbounded retry amplification.
  double retry_budget_ratio = 0.5;
  double retry_budget_cap = 32.0;
  /// Drain a node when its detector alerts (false: mark degraded only).
  bool auto_drain = true;
  /// Drained nodes are probed at this interval...
  sim::Duration probe_interval = sim::Duration::from_millis(250.0);
  /// ...and readmitted when a probe read completes within this bound.
  sim::Duration probe_ok_latency = sim::Duration::from_millis(50.0);
  std::uint32_t probe_sectors = 8;
  /// Object address space: key -> one of `objects` fixed-size objects.
  std::uint64_t objects = 20000;
  std::uint32_t object_sectors = 8;  ///< 4 KiB objects
};

struct BalancerStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t read_failovers = 0;  ///< reads served by a non-first replica
  std::uint64_t hedged_reads = 0;
  std::uint64_t hedge_wins = 0;  ///< hedge completed before the primary
  std::uint64_t retries_denied = 0;
  std::uint64_t failed_reads = 0;
  std::uint64_t failed_writes = 0;
  std::uint64_t quorum_losses = 0;
  std::uint64_t deadline_misses = 0;  ///< completed, but too late
  std::uint64_t drains = 0;
  std::uint64_t degrades = 0;
  std::uint64_t readmits = 0;
  std::uint64_t probes = 0;
};

struct RequestOutcome {
  bool ok = false;
  sim::SimTime complete = sim::SimTime::zero();
  std::uint32_t attempts = 0;
  bool hedged = false;
};

class Balancer {
 public:
  /// Routes over `nodes` (non-owning, id order must match `topology`).
  Balancer(ClusterTopology topology, std::vector<ClusterNode*> nodes,
           BalancerConfig config);
  /// Convenience: route over a Cluster's nodes.
  Balancer(Cluster& cluster, BalancerConfig config);

  const BalancerConfig& config() const { return config_; }
  const PlacementMap& placement() const { return placement_; }
  const BalancerStats& stats() const { return stats_; }

  /// Object LBA for a key (pure; same on every replica).
  std::uint64_t lba_of(std::uint64_t key) const;

  RequestOutcome read(sim::SimTime now, std::uint64_t key,
                      std::span<std::byte> out);
  RequestOutcome write(sim::SimTime now, std::uint64_t key,
                       std::span<const std::byte> in);

  /// Probe drained nodes whose probe timer is due; readmit recovered
  /// ones. Call from the traffic loop (monotonic `now`).
  void run_probes(sim::SimTime now);

 private:
  /// Candidate order for a replica set: healthy, then degraded, then
  /// drained (fail-static: a fully-drained set is still attempted).
  void rank_candidates(std::vector<NodeId>& replicas) const;
  /// Apply the detector -> health control action after an I/O completes.
  void react(ClusterNode& node, sim::SimTime when);
  bool spend_retry_token();

  ClusterTopology topology_;
  std::vector<ClusterNode*> nodes_;
  BalancerConfig config_;
  PlacementMap placement_;
  std::size_t write_quorum_;
  double retry_tokens_;
  BalancerStats stats_;
  std::vector<sim::SimTime> next_probe_;
  // Scratch buffers (reused per request; the balancer is single-trial
  // state like everything else in a simulation).
  mutable std::vector<NodeId> replica_scratch_;
  std::vector<sim::SimTime> ack_scratch_;
  std::vector<std::byte> probe_scratch_;
};

}  // namespace deepnote::cluster
