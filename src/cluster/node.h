// Cluster nodes and the serving datacenter they form.
//
// A node is one rack bay promoted to a unit of cluster membership: the
// bay's OS block device, a per-node AttackDetector watching every I/O it
// serves, and a health state the balancer routes around. A Cluster is a
// set of pods (one RackTestbed per pod — one enclosure, one acoustic
// blast radius) with one node per bay.
//
// Nodes run datacenter-tuned SCSI timeouts (datacenter_os_device()):
// a serving fleet fails commands in hundreds of milliseconds and lets
// the service layer fail over, instead of the desktop default of
// retrying a hung drive for minutes.
#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "cluster/hybrid.h"
#include "cluster/placement.h"
#include "core/detector.h"
#include "core/rack.h"
#include "storage/block_device.h"

namespace deepnote::cluster {

enum class NodeHealth {
  kHealthy,   ///< in rotation
  kDegraded,  ///< detector alerted but the balancer keeps routing to it
  kDrained,   ///< out of rotation; probed for readmission
};

const char* health_name(NodeHealth health);

struct NodeStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t errors = 0;
};

class ClusterNode {
 public:
  /// Does not take ownership of the device.
  ClusterNode(NodeId id, std::size_t pod, std::size_t bay,
              storage::BlockDevice& device,
              core::DetectorConfig detector = {});

  // Pinned: the device reference and the detector's identity make a
  // moved-from node a landmine (a vector reallocation would silently
  // route I/O through dead state), so nodes live in containers with
  // stable addresses (Cluster uses a deque) instead of being movable.
  ClusterNode(const ClusterNode&) = delete;
  ClusterNode& operator=(const ClusterNode&) = delete;
  ClusterNode(ClusterNode&&) = delete;
  ClusterNode& operator=(ClusterNode&&) = delete;

  NodeId id() const { return id_; }
  std::size_t pod() const { return pod_; }
  std::size_t bay() const { return bay_; }

  storage::BlockDevice& device() { return device_; }
  core::AttackDetector& detector() { return detector_; }
  const core::AttackDetector& detector() const { return detector_; }
  NodeHealth health() const { return health_; }
  const NodeStats& stats() const { return stats_; }

  /// Health transitions (timestamps kept for post-run timelines).
  void mark_degraded(sim::SimTime now);
  void drain(sim::SimTime now);
  void readmit(sim::SimTime now);
  std::optional<sim::SimTime> drained_at() const { return drained_at_; }
  std::optional<sim::SimTime> readmitted_at() const { return readmitted_at_; }

  /// Serve one object I/O; the outcome feeds the node's detector.
  storage::BlockIo read(sim::SimTime now, std::uint64_t lba,
                        std::uint32_t sector_count, std::span<std::byte> out);
  storage::BlockIo write(sim::SimTime now, std::uint64_t lba,
                         std::uint32_t sector_count,
                         std::span<const std::byte> in);

 private:
  void observe(sim::SimTime issued, const storage::BlockIo& io);

  NodeId id_;
  std::size_t pod_;
  std::size_t bay_;
  storage::BlockDevice& device_;
  core::AttackDetector detector_;
  NodeHealth health_ = NodeHealth::kHealthy;
  std::optional<sim::SimTime> drained_at_;
  std::optional<sim::SimTime> readmitted_at_;
  NodeStats stats_;
};

/// SCSI command timers tuned the way a serving fleet tunes them: fail
/// fast (150 ms timer, 2 attempts) and let replication absorb the error,
/// instead of the desktop default that hangs a request for ~75 s.
storage::OsDeviceConfig datacenter_os_device();

/// What sits in each bay: the bare HDD behind datacenter OS timers, or
/// that HDD fronted by an attack-aware flash tier (hybrid.h).
enum class NodeType : std::uint8_t {
  kHdd,
  kHybrid,
};

const char* node_type_name(NodeType type);

struct ClusterConfig {
  core::ScenarioId scenario = core::ScenarioId::kPlasticTower;
  ClusterTopology topology;  ///< pods x bays_per_pod
  storage::OsDeviceConfig os_device = datacenter_os_device();
  /// Per-node health monitor. Warms fast: a fleet baselines a node in
  /// dozens of ops, and the error-burst rule needs no warmup at all.
  core::DetectorConfig detector = fleet_detector();
  NodeType node_type = NodeType::kHdd;
  HybridConfig hybrid;  ///< flash tier, used when node_type == kHybrid
  std::uint64_t seed = 0xc1a5;

  static core::DetectorConfig fleet_detector();
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  const ClusterConfig& config() const { return config_; }
  const ClusterTopology& topology() const { return config_.topology; }
  std::size_t num_nodes() const { return nodes_.size(); }
  ClusterNode& node(NodeId id) { return nodes_.at(id); }
  const ClusterNode& node(NodeId id) const { return nodes_.at(id); }
  core::RackTestbed& pod(std::size_t pod) { return pods_.at(pod); }
  /// The node's flash tier; nullptr on a pure-HDD cluster.
  const HybridDevice* hybrid(NodeId id) const {
    return config_.node_type == NodeType::kHybrid ? &hybrids_.at(id)
                                                  : nullptr;
  }

  /// Non-owning node pointers in id order (what a Balancer routes over).
  std::vector<ClusterNode*> node_pointers();
  /// Non-owning raw block devices in id order (what the sharded engine
  /// drives; detectors/health live in the engine's flat arrays).
  std::vector<storage::BlockDevice*> device_pointers();

  /// Insonify / silence one pod (all its bays couple to the same field).
  void apply_attack(std::size_t pod, sim::SimTime now,
                    const core::AttackConfig& attack);
  void stop_attack(std::size_t pod, sim::SimTime now);

  /// Drives currently held parked by their shock sensors, cluster-wide.
  std::size_t parked_nodes() const;

 private:
  ClusterConfig config_;
  // Deques, not vectors: both types are immovable (nodes hold device
  // references, pods own acoustic state), and deque::emplace_back never
  // relocates existing elements. Hot per-request paths route over
  // node_pointers()/device_pointers() arrays, not through these.
  std::deque<core::RackTestbed> pods_;
  /// One flash tier per node on hybrid clusters (id order; empty
  /// otherwise). Immovable like everything else here.
  std::deque<HybridDevice> hybrids_;
  std::deque<ClusterNode> nodes_;
};

}  // namespace deepnote::cluster
