// Per-node request pipeline: a bounded FIFO queue with admission
// control and per-request deadlines in front of one block device.
//
// The immediate-dispatch cluster paths hand every op to the device the
// moment it is routed, so a node under acoustic attack serves each
// command in isolation — queue growth, head-of-line blocking, and load
// shedding are invisible by construction. NodeServer models the part of
// a storage server that actually breaks first under interference:
//
//  * Requests arrive through submit() and are admitted by an arrival
//    event in virtual-time order, so admission decisions interleave
//    correctly with completions.
//  * The device is a single server: one command in flight, the rest wait
//    in a bounded FIFO ring. `busy_until_` persists across submission
//    batches, so backlog carries over epochs.
//  * Admission control sheds when depth (waiting + in service) would
//    exceed the limit: kRejectNew bounces the newcomer, kDropOldest
//    evicts the head of the queue in its favor.
//  * A request still queued when its deadline passes is timed out at
//    dequeue without touching the device (the client has already given
//    up; spending drive time on it would be pure goodput loss).
//
// Every admitted request terminates in exactly one of {served, failed,
// timed out, shed} and reports through a single completion sink with its
// arrival / service-start / completion times — the decomposition of
// latency into queue wait and service time falls out of the callback.
//
// Request contexts are pooled through a free list and completion
// closures fit the event queue's inline buffer: a warm server performs
// zero heap allocations (enforced by cluster_serving_alloc_test).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cluster/serving/async_device.h"
#include "cluster/slo.h"
#include "sim/event_queue.h"
#include "storage/block_device.h"

namespace deepnote::cluster::serving {

enum class AdmissionPolicy : std::uint8_t {
  kRejectNew,   ///< full queue bounces the arriving request
  kDropOldest,  ///< full queue evicts its head in favor of the arrival
};

const char* admission_name(AdmissionPolicy policy);

struct ServerConfig {
  /// Maximum depth (waiting + in service) before admission sheds.
  std::size_t queue_limit = 32;
  AdmissionPolicy admission = AdmissionPolicy::kRejectNew;
};

/// Terminal report for one request. For kServed/kFailed the device ran
/// the command ([service_start, complete] is device time); kTimedOut
/// expired in queue (complete = deadline, no device time); kShed was
/// refused at admission (complete = the shed decision time).
struct ServeResult {
  std::uint64_t tag = 0;  ///< caller's handle, passed through untouched
  OutcomeKind outcome = OutcomeKind::kFailed;
  sim::SimTime arrival = sim::SimTime::zero();
  sim::SimTime service_start = sim::SimTime::zero();
  sim::SimTime complete = sim::SimTime::zero();
};

struct NodeServerStats {
  std::uint64_t submitted = 0;
  std::uint64_t served = 0;     ///< device completed ok
  std::uint64_t failed = 0;     ///< device error
  std::uint64_t timed_out = 0;  ///< deadline expired in queue
  std::uint64_t shed = 0;       ///< refused by admission control
  std::uint64_t max_depth = 0;  ///< run high-water queue depth
};

class NodeServer {
 public:
  /// Invoked exactly once per submitted request, in virtual-time
  /// completion order.
  using CompletionSink = void (*)(void* listener, const ServeResult& result);

  /// Does not own the device. Queue state starts empty and idle.
  NodeServer(storage::BlockDevice& device, ServerConfig config);

  NodeServer(const NodeServer&) = delete;
  NodeServer& operator=(const NodeServer&) = delete;

  const ServerConfig& config() const { return config_; }
  void set_listener(void* listener, CompletionSink sink);

  /// Forget all queue/backlog state and stats; pooled contexts and the
  /// event slab are retained so the next run stays allocation-free.
  void reset();

  /// Enqueue one request arriving at `arrival`. Reads fill `out`; writes
  /// take `in`. The arrival is processed (admission included) when
  /// drain() reaches its virtual time; `tag` comes back in the result.
  void submit(sim::SimTime arrival, storage::DiskOpKind kind,
              std::uint64_t lba, std::uint32_t sector_count,
              std::span<const std::byte> in, std::span<std::byte> out,
              sim::SimTime deadline, std::uint64_t tag);

  /// Run arrivals/completions until the pipeline is idle. Returns the
  /// latest completion time handed to the sink so far. The queue empties
  /// but `busy_until_` persists: backlog delays the next batch.
  sim::SimTime drain();

  std::size_t depth() const { return waiting_ + (in_service_ ? 1u : 0u); }
  sim::SimTime busy_until() const { return busy_until_; }
  const NodeServerStats& stats() const { return stats_; }
  /// Depth high-water since the last call (epoch-resolution telemetry).
  std::uint64_t take_epoch_max_depth();

 private:
  struct Ctx {
    std::uint64_t tag = 0;
    std::uint64_t lba = 0;
    sim::SimTime arrival = sim::SimTime::zero();
    sim::SimTime deadline = sim::SimTime::zero();
    const std::byte* in = nullptr;
    std::byte* out = nullptr;
    std::size_t in_size = 0;
    std::size_t out_size = 0;
    std::uint32_t sector_count = 0;
    storage::DiskOpKind kind = storage::DiskOpKind::kRead;
  };

  std::uint32_t acquire_ctx();
  void release_ctx(std::uint32_t idx);
  void on_arrival(std::uint32_t idx);
  void start_next(sim::SimTime now);
  static void on_device_complete(void* self, std::uint32_t idx,
                                 storage::BlockIo io);
  void finish(std::uint32_t idx, OutcomeKind outcome, sim::SimTime start,
              sim::SimTime complete);
  void note_depth();

  storage::BlockDevice& device_;
  ServerConfig config_;
  sim::EventQueue events_;
  AsyncBlockDevice async_;

  std::vector<Ctx> ctxs_;
  std::vector<std::uint32_t> free_;
  std::vector<std::uint32_t> wait_;  ///< FIFO ring, capacity queue_limit
  std::size_t wait_head_ = 0;
  std::size_t waiting_ = 0;
  bool in_service_ = false;
  sim::SimTime service_start_ = sim::SimTime::zero();  ///< of the op in flight
  sim::SimTime busy_until_ = sim::SimTime::zero();
  sim::SimTime frontier_ = sim::SimTime::zero();
  std::uint64_t epoch_max_depth_ = 0;
  NodeServerStats stats_;
  void* listener_ = nullptr;
  CompletionSink sink_ = nullptr;
};

}  // namespace deepnote::cluster::serving
