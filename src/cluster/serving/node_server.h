// Per-node request pipeline: a bounded FIFO queue with admission
// control and per-request deadlines in front of one block device.
//
// The immediate-dispatch cluster paths hand every op to the device the
// moment it is routed, so a node under acoustic attack serves each
// command in isolation — queue growth, head-of-line blocking, and load
// shedding are invisible by construction. NodeServer models the part of
// a storage server that actually breaks first under interference:
//
//  * Requests arrive through submit(), which only stages them in a
//    submit ring; drain() replays the batch with a three-way merge over
//    (sorted arrivals) x (the single in-flight completion) x (deadline
//    timers), so admission decisions interleave correctly with
//    completions without a per-op event-queue round trip.
//  * The device is a single server: one command in flight, the rest wait
//    in an intrusive FIFO list. `busy_until_` persists across
//    submission batches, so backlog carries over epochs.
//  * Admission control sheds when depth (waiting + in service) would
//    exceed the limit: kRejectNew bounces the newcomer, kDropOldest
//    evicts the head of the queue in its favor.
//  * Each queued request arms a hierarchical timer-wheel deadline; when
//    it fires, the request leaves the queue at its deadline instant
//    (freeing the slot for admission) without touching the device — the
//    client has already given up, and spending drive time on it would
//    be pure goodput loss. Timeouts therefore surface in virtual-time
//    order like every other completion.
//
// Every admitted request terminates in exactly one of {served, failed,
// timed out, shed, cancelled} and is appended to a completion ring the caller
// consumes in bulk after drain() — no per-op indirect calls — with its
// arrival / service-start / completion times, so the decomposition of
// latency into queue wait and service time falls out of the record.
//
// Request contexts are split hot/cold: the 64-byte hot struct carries
// the times, routing fields and intrusive links (wait queue + free
// list), the cold array the buffer spans. A warm server performs zero
// heap allocations (enforced by cluster_serving_alloc_test) as long as
// batches are submitted in arrival order; an out-of-order batch is
// stable-sorted at drain, which may allocate.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cluster/slo.h"
#include "sim/time.h"
#include "sim/timer_wheel.h"
#include "storage/block_device.h"

namespace deepnote::cluster::serving {

enum class AdmissionPolicy : std::uint8_t {
  kRejectNew,   ///< full queue bounces the arriving request
  kDropOldest,  ///< full queue evicts its head in favor of the arrival
};

const char* admission_name(AdmissionPolicy policy);

struct ServerConfig {
  /// Maximum depth (waiting + in service) before admission sheds.
  std::size_t queue_limit = 32;
  AdmissionPolicy admission = AdmissionPolicy::kRejectNew;
  /// Expire queued requests at their deadline (the sane default). When
  /// false the server never arms deadline timers and happily burns
  /// device time serving requests whose client already gave up — the
  /// wasted-work ingredient of a metastable collapse, kept as an
  /// explicit knob for the overload study.
  bool drop_expired = true;
};

/// Terminal report for one request. For kServed/kFailed the device ran
/// the command ([service_start, complete] is device time); kTimedOut
/// expired in queue (complete = deadline, no device time); kShed was
/// refused at admission (complete = the shed decision time); kCancelled
/// left the queue at its cancel time (a hedge leg whose sibling won).
struct ServeResult {
  std::uint64_t tag = 0;  ///< caller's handle, passed through untouched
  OutcomeKind outcome = OutcomeKind::kFailed;
  sim::SimTime arrival = sim::SimTime::zero();
  sim::SimTime service_start = sim::SimTime::zero();
  sim::SimTime complete = sim::SimTime::zero();
};

struct NodeServerStats {
  std::uint64_t submitted = 0;
  std::uint64_t served = 0;     ///< device completed ok
  std::uint64_t failed = 0;     ///< device error
  std::uint64_t timed_out = 0;  ///< deadline expired in queue
  std::uint64_t shed = 0;       ///< refused by admission control
  std::uint64_t cancelled = 0;  ///< cancelled in queue (hedge sibling won)
  std::uint64_t max_depth = 0;  ///< run high-water queue depth
};

class NodeServer {
 public:
  /// Does not own the device. Queue state starts empty and idle.
  NodeServer(storage::BlockDevice& device, ServerConfig config);

  NodeServer(const NodeServer&) = delete;
  NodeServer& operator=(const NodeServer&) = delete;
  /// Movable so a fleet can live in one contiguous vector.
  NodeServer(NodeServer&&) = default;

  const ServerConfig& config() const { return config_; }

  /// Forget all queue/backlog state and stats; pooled contexts, the
  /// timer-wheel slab and the rings are retained so the next run stays
  /// allocation-free.
  void reset();

  /// Pre-grow the context pool, timer slab and rings so a run whose
  /// queue depth stays within `slots` (and whose batches stay within
  /// `ring` staged arrivals/completions) never allocates — even the
  /// very first one. Construction-time hygiene for engines that build a
  /// fresh server fleet right before a timed run.
  void reserve(std::size_t slots, std::size_t ring);

  /// Stage one request arriving at `arrival`. Reads fill `out`; writes
  /// take `in`. The arrival is processed (admission included) when
  /// drain() reaches its virtual time; `tag` comes back in the result.
  /// A finite `cancel_at` pre-arms cancellation: if the request is still
  /// waiting in queue at that instant it leaves as kCancelled, freeing
  /// its slot — how a won hedge stops its losing leg from consuming
  /// capacity. Once service starts the request runs to completion.
  void submit(sim::SimTime arrival, storage::DiskOpKind kind,
              std::uint64_t lba, std::uint32_t sector_count,
              std::span<const std::byte> in, std::span<std::byte> out,
              sim::SimTime deadline, std::uint64_t tag,
              sim::SimTime cancel_at = sim::SimTime::infinity());

  /// Multiply device service spans (complete - start) by `scale`; the
  /// chaos injector's slow-node fault. 1.0 restores normal service.
  void set_service_scale(double scale) { service_scale_ = scale; }

  /// Run the staged batch until the pipeline is idle, appending one
  /// ServeResult per terminated request to the completion ring in
  /// virtual-time order. Returns the latest completion time so far. The
  /// queue empties but `busy_until_` persists: backlog delays the next
  /// batch.
  sim::SimTime drain();

  /// Results appended by drain() since the last clear, in completion
  /// order. Consume in bulk, then clear_completions().
  const std::vector<ServeResult>& completions() const { return completions_; }
  void clear_completions() { completions_.clear(); }

  std::size_t depth() const { return waiting_ + (in_service_ ? 1u : 0u); }
  sim::SimTime busy_until() const { return busy_until_; }
  const NodeServerStats& stats() const { return stats_; }
  /// Depth high-water since the last call (epoch-resolution telemetry).
  std::uint64_t take_epoch_max_depth();
  /// Context-pool high-water mark, for allocation tests.
  std::size_t ctx_slots() const { return hot_.size(); }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  /// Hot per-request state: everything the admission / dequeue /
  /// timeout paths touch, packed into one cache line.
  struct alignas(64) HotCtx {
    std::int64_t arrival_ns = 0;
    std::int64_t deadline_ns = 0;
    std::int64_t cancel_at_ns = 0;  ///< SimTime::infinity() = no cancel
    std::uint64_t tag = 0;
    std::uint64_t lba = 0;
    std::uint32_t qnext = kNil;  ///< wait-queue / free-list link
    std::uint32_t qprev = kNil;
    sim::TimerWheel::TimerId timer = sim::TimerWheel::kInvalidTimer;
    sim::TimerWheel::TimerId cancel_timer = sim::TimerWheel::kInvalidTimer;
    std::uint32_t sector_count = 0;
    storage::DiskOpKind kind = storage::DiskOpKind::kRead;
  };
  static_assert(sizeof(HotCtx) == 64, "hot request state must fit one line");

  /// Cold per-request state: buffer spans, only touched at service.
  struct ColdCtx {
    const std::byte* in = nullptr;
    std::byte* out = nullptr;
    std::size_t in_size = 0;
    std::size_t out_size = 0;
  };

  std::uint32_t acquire_ctx();
  void release_ctx(std::uint32_t idx);
  void push_wait(std::uint32_t idx);
  void unlink_wait(std::uint32_t idx);
  void disarm_timers(std::uint32_t idx);
  void fire_timeouts(std::int64_t t_ns);
  void on_arrival(std::uint32_t idx);
  void complete_inflight();
  void start_next(sim::SimTime now);
  void start_service(std::uint32_t idx, sim::SimTime start);
  void finish(std::uint32_t idx, OutcomeKind outcome, sim::SimTime start,
              sim::SimTime complete);
  void note_depth();

  // Hot-first layout: the fields the per-leg submit/drain path touches
  // sit in the object's first cache lines; the 1.6 KB timer wheel —
  // untouched unless requests actually queue — goes last, so an idle
  // server's working set is a couple of lines, not the whole object.
  storage::BlockDevice& device_;
  ServerConfig config_;

  std::uint32_t free_head_ = kNil;
  std::uint32_t wait_head_ = kNil;  ///< intrusive FIFO, head = oldest
  std::uint32_t wait_tail_ = kNil;
  std::uint32_t inflight_ = kNil;
  std::size_t waiting_ = 0;
  bool in_service_ = false;
  bool inflight_ok_ = false;
  bool arrivals_sorted_ = true;
  bool have_last_arrival_ = false;
  std::int64_t last_arrival_ns_ = 0;
  std::int64_t inflight_complete_ns_ = 0;
  sim::SimTime service_start_ = sim::SimTime::zero();  ///< of the op in flight
  sim::SimTime busy_until_ = sim::SimTime::zero();
  sim::SimTime frontier_ = sim::SimTime::zero();
  double service_scale_ = 1.0;
  std::uint64_t epoch_max_depth_ = 0;
  NodeServerStats stats_;

  std::vector<HotCtx> hot_;
  std::vector<ColdCtx> cold_;
  std::vector<std::uint32_t> arrivals_;  ///< staged submit ring (ctx ids)
  std::vector<ServeResult> completions_;          ///< completion ring
  std::vector<sim::TimerWheel::Expired> expired_;  ///< advance scratch

  sim::TimerWheel wheel_;
};

}  // namespace deepnote::cluster::serving
