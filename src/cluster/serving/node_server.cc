#include "cluster/serving/node_server.h"

#include <algorithm>
#include <stdexcept>

namespace deepnote::cluster::serving {

const char* admission_name(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kRejectNew: return "reject-new";
    case AdmissionPolicy::kDropOldest: return "drop-oldest";
  }
  return "?";
}

NodeServer::NodeServer(storage::BlockDevice& device, ServerConfig config)
    : device_(device), config_(config), async_(device_, events_) {
  if (config_.queue_limit == 0) {
    throw std::invalid_argument("node server: queue limit must be positive");
  }
  wait_.assign(config_.queue_limit, 0);
}

void NodeServer::set_listener(void* listener, CompletionSink sink) {
  listener_ = listener;
  sink_ = sink;
}

void NodeServer::reset() {
  // drain() leaves the queue empty, but a caller abandoning a run
  // mid-flight must not leak pending events into the next one.
  while (!events_.empty()) (void)events_.pop();
  free_.resize(ctxs_.size());
  for (std::uint32_t i = 0; i < free_.size(); ++i) free_[i] = i;
  wait_head_ = 0;
  waiting_ = 0;
  in_service_ = false;
  service_start_ = sim::SimTime::zero();
  busy_until_ = sim::SimTime::zero();
  frontier_ = sim::SimTime::zero();
  epoch_max_depth_ = 0;
  stats_ = {};
}

std::uint32_t NodeServer::acquire_ctx() {
  if (free_.empty()) {
    ctxs_.emplace_back();
    return static_cast<std::uint32_t>(ctxs_.size() - 1);
  }
  const std::uint32_t idx = free_.back();
  free_.pop_back();
  return idx;
}

void NodeServer::release_ctx(std::uint32_t idx) { free_.push_back(idx); }

void NodeServer::submit(sim::SimTime arrival, storage::DiskOpKind kind,
                        std::uint64_t lba, std::uint32_t sector_count,
                        std::span<const std::byte> in,
                        std::span<std::byte> out, sim::SimTime deadline,
                        std::uint64_t tag) {
  const std::uint32_t idx = acquire_ctx();
  Ctx& ctx = ctxs_[idx];
  ctx.tag = tag;
  ctx.lba = lba;
  ctx.arrival = arrival;
  ctx.deadline = deadline;
  ctx.in = in.data();
  ctx.in_size = in.size();
  ctx.out = out.data();
  ctx.out_size = out.size();
  ctx.sector_count = sector_count;
  ctx.kind = kind;
  // Admission runs inside the event so arrivals and completions are
  // processed in one merged virtual-time order regardless of the order
  // and batching of submit() calls.
  events_.schedule(arrival, [this, idx] { on_arrival(idx); });
}

void NodeServer::note_depth() {
  const std::uint64_t d = depth();
  stats_.max_depth = std::max(stats_.max_depth, d);
  epoch_max_depth_ = std::max(epoch_max_depth_, d);
}

void NodeServer::on_arrival(std::uint32_t idx) {
  const sim::SimTime now = ctxs_[idx].arrival;
  ++stats_.submitted;
  if (depth() >= config_.queue_limit) {
    if (config_.admission == AdmissionPolicy::kDropOldest && waiting_ > 0) {
      // Evict the head of the line: the newcomer is the request the
      // client still cares most about.
      const std::uint32_t oldest = wait_[wait_head_];
      wait_head_ = (wait_head_ + 1) % wait_.size();
      --waiting_;
      finish(oldest, OutcomeKind::kShed, now, now);
    } else {
      finish(idx, OutcomeKind::kShed, now, now);
      return;
    }
  }
  wait_[(wait_head_ + waiting_) % wait_.size()] = idx;
  ++waiting_;
  note_depth();
  if (!in_service_) start_next(now);
}

void NodeServer::start_next(sim::SimTime now) {
  while (waiting_ > 0) {
    const std::uint32_t idx = wait_[wait_head_];
    wait_head_ = (wait_head_ + 1) % wait_.size();
    --waiting_;
    Ctx& ctx = ctxs_[idx];
    const sim::SimTime start = sim::max(now, busy_until_);
    if (start >= ctx.deadline) {
      // The client gave up while this request waited; don't burn drive
      // time serving a response nobody is listening for.
      finish(idx, OutcomeKind::kTimedOut, ctx.deadline, ctx.deadline);
      continue;
    }
    in_service_ = true;
    service_start_ = start;
    async_.submit(ctx.kind, start, ctx.lba, ctx.sector_count,
                  std::span<const std::byte>(ctx.in, ctx.in_size),
                  std::span<std::byte>(ctx.out, ctx.out_size), this, idx,
                  &NodeServer::on_device_complete);
    return;
  }
}

void NodeServer::on_device_complete(void* self, std::uint32_t idx,
                                    storage::BlockIo io) {
  auto* server = static_cast<NodeServer*>(self);
  server->in_service_ = false;
  server->busy_until_ = io.complete;
  server->finish(idx,
                 io.ok() ? OutcomeKind::kServed : OutcomeKind::kFailed,
                 server->service_start_, io.complete);
  server->start_next(io.complete);
}

void NodeServer::finish(std::uint32_t idx, OutcomeKind outcome,
                        sim::SimTime start, sim::SimTime complete) {
  switch (outcome) {
    case OutcomeKind::kServed: ++stats_.served; break;
    case OutcomeKind::kFailed: ++stats_.failed; break;
    case OutcomeKind::kTimedOut: ++stats_.timed_out; break;
    case OutcomeKind::kShed: ++stats_.shed; break;
  }
  frontier_ = sim::max(frontier_, complete);
  if (sink_ != nullptr) {
    const Ctx& ctx = ctxs_[idx];
    ServeResult result;
    result.tag = ctx.tag;
    result.outcome = outcome;
    result.arrival = ctx.arrival;
    result.service_start = start;
    result.complete = complete;
    sink_(listener_, result);
  }
  release_ctx(idx);
}

sim::SimTime NodeServer::drain() {
  while (!events_.empty()) {
    sim::EventQueue::Fired fired = events_.pop();
    fired.fn();
  }
  return frontier_;
}

std::uint64_t NodeServer::take_epoch_max_depth() {
  const std::uint64_t d = epoch_max_depth_;
  epoch_max_depth_ = depth();
  return d;
}

}  // namespace deepnote::cluster::serving
