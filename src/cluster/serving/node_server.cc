#include "cluster/serving/node_server.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace deepnote::cluster::serving {

namespace {
constexpr std::int64_t kNoEvent = std::numeric_limits<std::int64_t>::max();
/// Timer payload bit distinguishing a cancel timer from a deadline
/// timer; the low 32 bits carry the ctx index either way.
constexpr std::uint64_t kCancelPayloadBit = std::uint64_t{1} << 32;
}  // namespace

const char* admission_name(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kRejectNew: return "reject-new";
    case AdmissionPolicy::kDropOldest: return "drop-oldest";
  }
  return "?";
}

NodeServer::NodeServer(storage::BlockDevice& device, ServerConfig config)
    : device_(device), config_(config) {
  if (config_.queue_limit == 0) {
    throw std::invalid_argument("node server: queue limit must be positive");
  }
}

void NodeServer::reset() {
  wheel_.reset();
  if (waiting_ > 0 || in_service_ || !arrivals_.empty()) {
    // Abandoned mid-pipeline: reclaim every context wholesale. When the
    // last batch drained to idle (the engine's normal shape) all
    // contexts are already back on the free list and this is skipped,
    // so resetting a 10k-server fleet stays O(fleet), not O(pool).
    free_head_ = kNil;
    for (std::uint32_t i = 0; i < hot_.size(); ++i) {
      hot_[i].qnext = free_head_;
      free_head_ = i;
    }
  }
  arrivals_.clear();
  arrivals_sorted_ = true;
  have_last_arrival_ = false;
  wait_head_ = wait_tail_ = kNil;
  waiting_ = 0;
  in_service_ = false;
  inflight_ = kNil;
  service_start_ = sim::SimTime::zero();
  busy_until_ = sim::SimTime::zero();
  frontier_ = sim::SimTime::zero();
  service_scale_ = 1.0;
  epoch_max_depth_ = 0;
  stats_ = {};
  completions_.clear();
}

void NodeServer::reserve(std::size_t slots, std::size_t ring) {
  hot_.reserve(slots);
  while (hot_.size() < slots) {
    hot_.emplace_back();
    hot_.back().qnext = free_head_;
    free_head_ = static_cast<std::uint32_t>(hot_.size() - 1);
  }
  cold_.resize(hot_.size());
  wheel_.reserve(slots);
  arrivals_.reserve(ring);
  completions_.reserve(ring);
  expired_.reserve(slots);
}

std::uint32_t NodeServer::acquire_ctx() {
  if (free_head_ == kNil) {
    hot_.emplace_back();
    cold_.emplace_back();
    return static_cast<std::uint32_t>(hot_.size() - 1);
  }
  const std::uint32_t idx = free_head_;
  free_head_ = hot_[idx].qnext;
  return idx;
}

void NodeServer::release_ctx(std::uint32_t idx) {
  hot_[idx].qnext = free_head_;
  free_head_ = idx;
}

void NodeServer::push_wait(std::uint32_t idx) {
  HotCtx& ctx = hot_[idx];
  ctx.qnext = kNil;
  ctx.qprev = wait_tail_;
  if (wait_tail_ != kNil) {
    hot_[wait_tail_].qnext = idx;
  } else {
    wait_head_ = idx;
  }
  wait_tail_ = idx;
  ++waiting_;
}

void NodeServer::unlink_wait(std::uint32_t idx) {
  HotCtx& ctx = hot_[idx];
  if (ctx.qprev != kNil) {
    hot_[ctx.qprev].qnext = ctx.qnext;
  } else {
    wait_head_ = ctx.qnext;
  }
  if (ctx.qnext != kNil) {
    hot_[ctx.qnext].qprev = ctx.qprev;
  } else {
    wait_tail_ = ctx.qprev;
  }
  --waiting_;
}

void NodeServer::submit(sim::SimTime arrival, storage::DiskOpKind kind,
                        std::uint64_t lba, std::uint32_t sector_count,
                        std::span<const std::byte> in,
                        std::span<std::byte> out, sim::SimTime deadline,
                        std::uint64_t tag, sim::SimTime cancel_at) {
  const std::uint32_t idx = acquire_ctx();
  HotCtx& hot = hot_[idx];
  hot.arrival_ns = arrival.ns();
  hot.deadline_ns = deadline.ns();
  hot.cancel_at_ns = cancel_at.ns();
  hot.tag = tag;
  hot.lba = lba;
  hot.timer = sim::TimerWheel::kInvalidTimer;
  hot.cancel_timer = sim::TimerWheel::kInvalidTimer;
  hot.sector_count = sector_count;
  hot.kind = kind;
  ColdCtx& cold = cold_[idx];
  cold.in = in.data();
  cold.in_size = in.size();
  cold.out = out.data();
  cold.out_size = out.size();
  // The engine submits each batch in canonical (issue, seq) order, so
  // the staged ring is normally already sorted; track the invariant so
  // drain() only pays for a sort when a caller actually broke it.
  if (!have_last_arrival_) {
    last_arrival_ns_ = arrival.ns();
    have_last_arrival_ = true;
  } else if (arrival.ns() < last_arrival_ns_) {
    arrivals_sorted_ = false;
  } else {
    last_arrival_ns_ = arrival.ns();
  }
  arrivals_.push_back(idx);
}

void NodeServer::note_depth() {
  const std::uint64_t d = depth();
  stats_.max_depth = std::max(stats_.max_depth, d);
  epoch_max_depth_ = std::max(epoch_max_depth_, d);
}

void NodeServer::fire_timeouts(std::int64_t t_ns) {
  if (waiting_ == 0) return;  // no queued request, no armed timer
  expired_.clear();
  wheel_.advance(sim::SimTime{t_ns}, expired_);
  for (const sim::TimerWheel::Expired& e : expired_) {
    const auto idx = static_cast<std::uint32_t>(e.payload);
    HotCtx& ctx = hot_[idx];
    if (e.payload & kCancelPayloadBit) {
      // A request can have both its deadline and its cancel inside this
      // advance window; whichever fired first already finished it and
      // invalidated the other's timer field — skip the stale record.
      if (ctx.cancel_timer == sim::TimerWheel::kInvalidTimer) continue;
      ctx.cancel_timer = sim::TimerWheel::kInvalidTimer;
      if (ctx.timer != sim::TimerWheel::kInvalidTimer) {
        // The sibling deadline timer is unfired only if it lies beyond
        // the advance window (a fired timer must not be cancel()ed).
        if (ctx.deadline_ns > t_ns) wheel_.cancel(ctx.timer);
        ctx.timer = sim::TimerWheel::kInvalidTimer;
      }
      unlink_wait(idx);
      finish(idx, OutcomeKind::kCancelled, e.deadline, e.deadline);
    } else {
      if (ctx.timer == sim::TimerWheel::kInvalidTimer) continue;
      ctx.timer = sim::TimerWheel::kInvalidTimer;
      if (ctx.cancel_timer != sim::TimerWheel::kInvalidTimer) {
        if (ctx.cancel_at_ns > t_ns) wheel_.cancel(ctx.cancel_timer);
        ctx.cancel_timer = sim::TimerWheel::kInvalidTimer;
      }
      unlink_wait(idx);
      finish(idx, OutcomeKind::kTimedOut, e.deadline, e.deadline);
    }
  }
}

void NodeServer::on_arrival(std::uint32_t idx) {
  HotCtx& ctx = hot_[idx];
  const sim::SimTime now{ctx.arrival_ns};
  ++stats_.submitted;
  if (!in_service_ && waiting_ == 0) {
    // Idle server (the common case off-attack): the wait-queue push and
    // the timer arm/cancel pair would be undone immediately by
    // start_next, so skip them. Stamps, outcomes and depth telemetry
    // match the queued path exactly.
    stats_.max_depth = std::max(stats_.max_depth, std::uint64_t{1});
    epoch_max_depth_ = std::max(epoch_max_depth_, std::uint64_t{1});
    const sim::SimTime start = sim::max(now, busy_until_);
    const bool deadline_due =
        config_.drop_expired && start.ns() >= ctx.deadline_ns;
    const bool cancel_due = ctx.cancel_at_ns <= start.ns();
    // Both elapsed before service could start: the earlier event wins
    // (ties to the deadline, matching wheel schedule order).
    if (deadline_due && (!cancel_due || ctx.deadline_ns <= ctx.cancel_at_ns)) {
      const sim::SimTime deadline{ctx.deadline_ns};
      finish(idx, OutcomeKind::kTimedOut, deadline, deadline);
      return;
    }
    if (cancel_due) {
      const sim::SimTime cancel{ctx.cancel_at_ns};
      finish(idx, OutcomeKind::kCancelled, cancel, cancel);
      return;
    }
    start_service(idx, start);
    return;
  }
  if (depth() >= config_.queue_limit) {
    if (config_.admission == AdmissionPolicy::kDropOldest && waiting_ > 0) {
      // Evict the head of the line: the newcomer is the request the
      // client still cares most about.
      const std::uint32_t oldest = wait_head_;
      unlink_wait(oldest);
      disarm_timers(oldest);
      finish(oldest, OutcomeKind::kShed, now, now);
    } else {
      finish(idx, OutcomeKind::kShed, now, now);
      return;
    }
  }
  push_wait(idx);
  if (config_.drop_expired) {
    ctx.timer = wheel_.schedule(sim::SimTime{ctx.deadline_ns}, idx);
  }
  if (ctx.cancel_at_ns != kNoEvent) {
    ctx.cancel_timer =
        wheel_.schedule(sim::SimTime{ctx.cancel_at_ns}, idx | kCancelPayloadBit);
  }
  note_depth();
  if (!in_service_) start_next(now);
}

void NodeServer::disarm_timers(std::uint32_t idx) {
  HotCtx& ctx = hot_[idx];
  if (ctx.timer != sim::TimerWheel::kInvalidTimer) {
    wheel_.cancel(ctx.timer);
    ctx.timer = sim::TimerWheel::kInvalidTimer;
  }
  if (ctx.cancel_timer != sim::TimerWheel::kInvalidTimer) {
    wheel_.cancel(ctx.cancel_timer);
    ctx.cancel_timer = sim::TimerWheel::kInvalidTimer;
  }
}

void NodeServer::start_next(sim::SimTime now) {
  while (waiting_ > 0) {
    const std::uint32_t idx = wait_head_;
    unlink_wait(idx);
    disarm_timers(idx);
    HotCtx& ctx = hot_[idx];
    const sim::SimTime start = sim::max(now, busy_until_);
    const bool deadline_due =
        config_.drop_expired && start.ns() >= ctx.deadline_ns;
    const bool cancel_due = ctx.cancel_at_ns <= start.ns();
    if (deadline_due && (!cancel_due || ctx.deadline_ns <= ctx.cancel_at_ns)) {
      // Backstop for cross-batch time travel: backlog from a previous
      // drain already covers this request's whole deadline window, so
      // the wheel (which only advances within the batch) never saw it
      // expire. Same stamps as a wheel timeout.
      const sim::SimTime deadline{ctx.deadline_ns};
      finish(idx, OutcomeKind::kTimedOut, deadline, deadline);
      continue;
    }
    if (cancel_due) {
      // Same backstop for the cancel timer: the hedge sibling won inside
      // the backlog window the wheel never advanced across.
      const sim::SimTime cancel{ctx.cancel_at_ns};
      finish(idx, OutcomeKind::kCancelled, cancel, cancel);
      continue;
    }
    start_service(idx, start);
    return;
  }
}

void NodeServer::start_service(std::uint32_t idx, sim::SimTime start) {
  in_service_ = true;
  inflight_ = idx;
  service_start_ = start;
  const HotCtx& ctx = hot_[idx];
  const ColdCtx& cold = cold_[idx];
  storage::BlockIo io;
  switch (ctx.kind) {
    case storage::DiskOpKind::kRead:
      io = device_.read(start, ctx.lba, ctx.sector_count,
                        std::span<std::byte>(cold.out, cold.out_size));
      break;
    case storage::DiskOpKind::kWrite:
      io = device_.write(start, ctx.lba, ctx.sector_count,
                         std::span<const std::byte>(cold.in, cold.in_size));
      break;
    case storage::DiskOpKind::kFlush:
      io = device_.flush(start);
      break;
  }
  std::int64_t complete_ns = io.complete.ns();
  if (service_scale_ != 1.0 && !io.complete.is_infinite()) {
    const double span = static_cast<double>(complete_ns - start.ns());
    complete_ns = start.ns() + static_cast<std::int64_t>(span * service_scale_);
  }
  inflight_complete_ns_ = complete_ns;
  inflight_ok_ = io.ok();
}

void NodeServer::complete_inflight() {
  const std::uint32_t idx = inflight_;
  in_service_ = false;
  inflight_ = kNil;
  busy_until_ = sim::SimTime{inflight_complete_ns_};
  finish(idx, inflight_ok_ ? OutcomeKind::kServed : OutcomeKind::kFailed,
         service_start_, busy_until_);
  start_next(busy_until_);
}

void NodeServer::finish(std::uint32_t idx, OutcomeKind outcome,
                        sim::SimTime start, sim::SimTime complete) {
  switch (outcome) {
    case OutcomeKind::kServed: ++stats_.served; break;
    case OutcomeKind::kFailed: ++stats_.failed; break;
    case OutcomeKind::kTimedOut: ++stats_.timed_out; break;
    case OutcomeKind::kShed: ++stats_.shed; break;
    case OutcomeKind::kCancelled: ++stats_.cancelled; break;
  }
  frontier_ = sim::max(frontier_, complete);
  const HotCtx& ctx = hot_[idx];
  completions_.push_back(ServeResult{ctx.tag, outcome,
                                     sim::SimTime{ctx.arrival_ns}, start,
                                     complete});
  release_ctx(idx);
}

sim::SimTime NodeServer::drain() {
  if (!arrivals_sorted_) {
    std::stable_sort(arrivals_.begin(), arrivals_.end(),
                     [this](std::uint32_t a, std::uint32_t b) {
                       return hot_[a].arrival_ns < hot_[b].arrival_ns;
                     });
    arrivals_sorted_ = true;
  }
  // Three-way merge in virtual time: staged arrivals x the in-flight
  // completion x wheel deadlines. Deadlines at or before an event fire
  // first; arrivals win arrival/completion ties (they were staged
  // before the completion existed — the order the event queue this ring
  // replaced would have produced).
  std::size_t ai = 0;
  const std::size_t n_arrivals = arrivals_.size();
  for (;;) {
    const std::int64_t next_arrival =
        ai < n_arrivals ? hot_[arrivals_[ai]].arrival_ns : kNoEvent;
    const std::int64_t next_complete =
        in_service_ ? inflight_complete_ns_ : kNoEvent;
    if (next_arrival == kNoEvent && next_complete == kNoEvent) break;
    if (next_complete < next_arrival) {
      fire_timeouts(next_complete);
      complete_inflight();
    } else {
      fire_timeouts(next_arrival);
      on_arrival(arrivals_[ai++]);
    }
  }
  arrivals_.clear();
  have_last_arrival_ = false;
  return frontier_;
}

std::uint64_t NodeServer::take_epoch_max_depth() {
  const std::uint64_t d = epoch_max_depth_;
  epoch_max_depth_ = depth();
  return d;
}

}  // namespace deepnote::cluster::serving
