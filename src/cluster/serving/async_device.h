// Async submit/complete facade over the synchronous virtual-time
// BlockDevice interface.
//
// The block-device layer is call/return: an operation takes the caller's
// SimTime and reports its completion time. A serving front-end wants the
// opposite shape — submit now, get called back when the device is done —
// so overlapping in-flight requests, queue growth, and cancellation
// become expressible. This adapter bridges the two: submit() executes
// the device command at its virtual start time (the device model advances
// its own mechanical state) and schedules the completion callback on an
// event queue at the command's completion time. Everything in between is
// queue time the caller can observe.
//
// Completion callbacks are function pointer + context (not std::function)
// and the scheduled closure fits EventFn's inline buffer, so a warm
// submit/complete cycle performs zero heap allocations.
#pragma once

#include <cstdint>
#include <span>

#include "sim/event_queue.h"
#include "storage/block_device.h"

namespace deepnote::cluster::serving {

class AsyncBlockDevice {
 public:
  /// Called at the command's virtual completion time. `token` is the
  /// submitter's request handle, passed through untouched.
  using Completion = void (*)(void* ctx, std::uint32_t token,
                              storage::BlockIo io);

  /// Does not own either; both must outlive the adapter.
  AsyncBlockDevice(storage::BlockDevice& device, sim::EventQueue& events)
      : device_(device), events_(events) {}

  AsyncBlockDevice(const AsyncBlockDevice&) = delete;
  AsyncBlockDevice& operator=(const AsyncBlockDevice&) = delete;

  storage::BlockDevice& device() { return device_; }

  /// Start a command at `start` and schedule `fn(ctx, token, io)` at its
  /// completion time. Reads fill `out`; writes take `in`.
  void submit(storage::DiskOpKind kind, sim::SimTime start, std::uint64_t lba,
              std::uint32_t sector_count, std::span<const std::byte> in,
              std::span<std::byte> out, void* ctx, std::uint32_t token,
              Completion fn) {
    storage::BlockIo io;
    switch (kind) {
      case storage::DiskOpKind::kRead:
        io = device_.read(start, lba, sector_count, out);
        break;
      case storage::DiskOpKind::kWrite:
        io = device_.write(start, lba, sector_count, in);
        break;
      case storage::DiskOpKind::kFlush:
        io = device_.flush(start);
        break;
    }
    events_.schedule(io.complete, [ctx, token, io, fn] { fn(ctx, token, io); });
  }

 private:
  storage::BlockDevice& device_;
  sim::EventQueue& events_;
};

}  // namespace deepnote::cluster::serving
