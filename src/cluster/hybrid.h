// Attack-aware hybrid storage node: flash tier in front of an HDD.
//
// The paper's attack parks every head in the insonified pod; a pure-HDD
// node has nothing to serve from. A hybrid node keeps a provisioned
// flash mirror of its object space (storage/flash) next to the HDD and
// moves between three tier modes:
//
//   kNormal     writes land on flash first (the ack point — a WAL-style
//               durability tier) and are mirrored to the HDD; reads are
//               served by the HDD bulk tier with flash as fallback, so
//               an HDD failure is absorbed, not surfaced.
//   kFlashOnly  entered when the node's own tier detector alerts on HDD
//               outcomes (the acoustic signature: timeouts + error
//               bursts). The HDD is bypassed entirely — writes go to
//               flash only and are marked dirty; low-rate probes watch
//               for the HDD coming back.
//   kDraining   after enough consecutive good probes: normal serving
//               resumes and each op also writes a batch of dirty pages
//               back to the HDD. When the last dirty page drains the
//               node returns to kNormal; a probe or drain failure
//               (attack resumed) falls straight back to kFlashOnly.
//
// Availability through an attack therefore does not depend on detection
// time at all — pre-detection HDD failures already fall back to flash.
// Detection only moves the HDD timeout penalty off the serving path, so
// it shapes tail latency, not availability.
//
// Mirror addressing is literal: the balancer's dense object LBAs are
// used unchanged on the flash translation layer, whose logical space
// must cover the object span. Probes and drain writes are issued as
// independent background commands — their latency is the HDD's problem,
// not the serving op's.
//
// All state is preallocated; the serving path allocates nothing, and a
// node's device is only ever driven by its own engine shard, so fleets
// stay byte-identical at any DEEPNOTE_JOBS.
#pragma once

#include <cstdint>
#include <vector>

#include "core/detector.h"
#include "storage/flash/ftl.h"

namespace deepnote::cluster {

enum class TierMode : std::uint8_t {
  kNormal = 0,
  kFlashOnly = 1,
  kDraining = 2,
};

const char* tier_mode_name(TierMode mode);

struct HybridConfig {
  /// Flash tier geometry. The default covers the default balancer object
  /// span (20000 x 4 KiB) with over-provisioning to spare.
  storage::FlashConfig flash = provisioned_flash();
  storage::FtlConfig ftl;
  /// Tier detector over HDD outcomes; the acoustic error burst trips it
  /// with no warmup.
  core::DetectorConfig detector = tier_detector();
  /// Background HDD probe cadence while in kFlashOnly.
  sim::Duration probe_interval = sim::Duration::from_millis(250.0);
  std::uint32_t probe_good_needed = 8;  ///< consecutive OKs to start drain
  std::uint32_t probe_sectors = 8;
  std::uint32_t drain_batch = 4;  ///< dirty pages written back per op

  static storage::FlashConfig provisioned_flash();
  static core::DetectorConfig tier_detector();
};

struct HybridStats {
  std::uint64_t hdd_reads = 0;        ///< reads served by the bulk tier
  std::uint64_t flash_reads = 0;      ///< reads served by the flash tier
  std::uint64_t absorbed_errors = 0;  ///< HDD failures hidden by flash
  std::uint64_t flash_only_ops = 0;
  std::uint64_t probes = 0;
  std::uint64_t drained_pages = 0;
  std::uint64_t mode_changes = 0;
};

class HybridDevice final : public storage::BlockDevice {
 public:
  /// Does not take ownership of `hdd`. Owns the flash tier.
  HybridDevice(storage::BlockDevice& hdd, HybridConfig config = {});

  HybridDevice(const HybridDevice&) = delete;
  HybridDevice& operator=(const HybridDevice&) = delete;

  /// The bulk tier defines the addressable space; the flash logical
  /// space must cover the object span actually addressed.
  std::uint64_t total_sectors() const override {
    return hdd_.total_sectors();
  }

  storage::BlockIo read(sim::SimTime now, std::uint64_t lba,
                        std::uint32_t sector_count,
                        std::span<std::byte> out) override;
  storage::BlockIo write(sim::SimTime now, std::uint64_t lba,
                         std::uint32_t sector_count,
                         std::span<const std::byte> in) override;
  storage::BlockIo flush(sim::SimTime now) override;

  TierMode mode() const { return mode_; }
  const HybridStats& stats() const { return stats_; }
  std::uint64_t dirty_pages() const { return dirty_count_; }
  const storage::Ftl& ftl() const { return ftl_; }
  const storage::FlashDevice& flash() const { return flash_; }
  const core::AttackDetector& tier_detector() const { return detector_; }

 private:
  std::uint32_t page_sectors() const { return config_.flash.page_sectors; }
  bool in_flash_span(std::uint64_t lba, std::uint32_t sector_count) const {
    return lba + sector_count <= ftl_.total_sectors();
  }
  bool any_dirty(std::uint64_t lba, std::uint32_t sector_count) const;
  void mark_dirty(std::uint64_t lba, std::uint32_t sector_count);
  void enter(TierMode mode, sim::SimTime now);
  /// Feed an HDD outcome to the tier detector; flips to kFlashOnly on
  /// alert.
  void observe_hdd(sim::SimTime issued, const storage::BlockIo& io);
  /// Background probe while kFlashOnly (rate-limited by probe_interval).
  void maybe_probe(sim::SimTime now);
  /// Write back up to drain_batch dirty pages while kDraining.
  void drain_some(sim::SimTime now);

  storage::BlockDevice& hdd_;
  HybridConfig config_;
  storage::FlashDevice flash_;
  storage::Ftl ftl_;
  core::AttackDetector detector_;
  HybridStats stats_;

  TierMode mode_ = TierMode::kNormal;
  std::vector<std::uint64_t> dirty_;  ///< bitmap over flash logical pages
  std::uint64_t dirty_count_ = 0;
  std::uint64_t drain_cursor_ = 0;  ///< next logical page to scan
  sim::SimTime next_probe_at_ = sim::SimTime::zero();
  std::uint32_t probe_good_ = 0;
  std::vector<std::byte> page_buf_;  ///< drain-path scratch
};

}  // namespace deepnote::cluster
