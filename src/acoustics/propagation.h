// End-to-end underwater propagation path: source -> water -> receiver.
//
// Combines geometric spreading and frequency-dependent absorption to give
// the incident SPL at a receiver (e.g. the enclosure wall) for a given
// emitted tone, plus utility solvers for the range-extension discussion
// in Section 4.2 / 5 of the paper.
#pragma once

#include "acoustics/absorption.h"
#include "acoustics/medium.h"
#include "acoustics/signal.h"
#include "acoustics/spreading.h"

namespace deepnote::acoustics {

class PropagationPath {
 public:
  PropagationPath(Medium medium, SpreadingParams spreading,
                  AbsorptionModel absorption);

  /// Total one-way transmission loss at the given frequency/distance, dB.
  double transmission_loss_db(double frequency_hz, double distance_m) const;

  /// SPL at the receiver given an emitted tone (level defined at the
  /// spreading reference distance). dB re 1 uPa.
  double received_spl_db(const ToneState& emitted, double distance_m) const;

  /// Received tone: same frequency, attenuated level; inactive tones pass
  /// through unchanged.
  ToneState received(const ToneState& emitted, double distance_m) const;

  /// Propagation delay over the path, seconds.
  double delay_seconds(double distance_m) const;

  /// Solve for the source level needed to deliver `target_spl_db` at
  /// `distance_m` (the attacker's "raise the volume" computation).
  double required_source_level_db(double frequency_hz, double distance_m,
                                  double target_spl_db) const;

  /// Solve (bisection) for the maximum distance at which a source of
  /// `source_level_db` still delivers at least `target_spl_db`.
  /// Returns 0 if unreachable even at the reference distance.
  double max_effective_range_m(double frequency_hz, double source_level_db,
                               double target_spl_db,
                               double search_limit_m = 1e6) const;

  const Medium& medium() const { return medium_; }
  const SpreadingParams& spreading() const { return spreading_; }
  AbsorptionModel absorption_model() const { return absorption_; }

 private:
  Medium medium_;
  SpreadingParams spreading_;
  AbsorptionModel absorption_;
};

}  // namespace deepnote::acoustics
