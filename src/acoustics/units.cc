#include "acoustics/units.h"

#include <cmath>

namespace deepnote::acoustics {

double db_from_power_ratio(double ratio) { return 10.0 * std::log10(ratio); }
double db_from_field_ratio(double ratio) { return 20.0 * std::log10(ratio); }
double power_ratio_from_db(double db) { return std::pow(10.0, db / 10.0); }
double field_ratio_from_db(double db) { return std::pow(10.0, db / 20.0); }

double air_to_water_reference_shift_db() {
  return db_from_field_ratio(kRefPressureAirPa / kRefPressureWaterPa);
}

double spl_water_db_to_pa(double db_re_1upa) {
  return kRefPressureWaterPa * field_ratio_from_db(db_re_1upa);
}

double pa_to_spl_water_db(double pa) {
  return db_from_field_ratio(pa / kRefPressureWaterPa);
}

double spl_air_db_to_pa(double db_re_20upa) {
  return kRefPressureAirPa * field_ratio_from_db(db_re_20upa);
}

double pa_to_spl_air_db(double pa) {
  return db_from_field_ratio(pa / kRefPressureAirPa);
}

double spl_air_db_to_water_db(double db_re_20upa) {
  return db_re_20upa + air_to_water_reference_shift_db();
}

double spl_water_db_to_air_db(double db_re_1upa) {
  return db_re_1upa - air_to_water_reference_shift_db();
}

}  // namespace deepnote::acoustics
