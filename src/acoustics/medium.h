// Water medium model: sound speed, density, acoustic impedance.
//
// Sound speed uses Medwin's (1975) simple equation, valid for
// 0<=T<=35 C, 0<=S<=45 ppt, 0<=z<=1000 m — the equation the paper cites
// ([30]) when discussing how temperature/salinity/depth change the attack.
#pragma once

namespace deepnote::acoustics {

struct WaterConditions {
  double temperature_c = 20.0;  ///< water temperature, Celsius
  double salinity_ppt = 0.0;    ///< salinity, parts per thousand
  double depth_m = 1.0;         ///< depth of the propagation path, meters
  double ph = 8.0;              ///< acidity (affects boric-acid absorption)

  /// Lab tank used in the paper: room-temperature fresh water, shallow.
  static WaterConditions tank();
  /// Open-ocean defaults (T=10C, S=35ppt, pH=8).
  static WaterConditions ocean(double depth_m = 36.0);
  /// Brackish Baltic conditions cited in Section 4.2 (S~7 ppt, 50 m).
  static WaterConditions baltic();
};

class Medium {
 public:
  explicit Medium(WaterConditions conditions = WaterConditions::tank());

  const WaterConditions& conditions() const { return conditions_; }

  /// Speed of sound in m/s (Medwin 1975).
  double sound_speed() const;

  /// Water density in kg/m^3 (linearised UNESCO-style fit: temperature and
  /// salinity corrections around 1000 kg/m^3).
  double density() const;

  /// Characteristic acoustic impedance rho*c, in rayl (Pa*s/m).
  double impedance() const;

  /// Wavelength at the given frequency, meters.
  double wavelength(double frequency_hz) const;

  /// Static helper: Medwin's equation directly.
  static double medwin_sound_speed(double temperature_c, double salinity_ppt,
                                   double depth_m);

 private:
  WaterConditions conditions_;
};

/// Reference: speed of sound in air at 20 C (for the "4x faster" comparison
/// in Section 2.2).
inline constexpr double kSoundSpeedAirMs = 343.0;

}  // namespace deepnote::acoustics
