#include "acoustics/source.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace deepnote::acoustics {

SpeakerSpec SpeakerSpec::aq339_diluvio() {
  // Full-range pool speaker: usable well below 100 Hz through ~17 kHz,
  // loud enough to deliver the paper's 140 dB(air-equivalent) signal.
  return SpeakerSpec{.passband_lo_hz = 60.0,
                     .passband_hi_hz = 17000.0,
                     .rolloff_db_per_octave = 12.0,
                     .max_output_db = 180.0,
                     .reference_distance_m = 0.01};
}

SpeakerSpec SpeakerSpec::sonar_projector() {
  return SpeakerSpec{.passband_lo_hz = 50.0,
                     .passband_hi_hz = 40000.0,
                     .rolloff_db_per_octave = 18.0,
                     .max_output_db = 220.0,
                     .reference_distance_m = 1.0};
}

AmplifierSpec AmplifierSpec::toa_bg2120() {
  return AmplifierSpec{.gain_db = 0.0, .clip_level_db = 200.0};
}

AcousticSource::AcousticSource(std::shared_ptr<const Signal> signal,
                               SpeakerSpec speaker, AmplifierSpec amplifier)
    : signal_(std::move(signal)), speaker_(speaker), amplifier_(amplifier) {
  if (!signal_) {
    throw std::invalid_argument("AcousticSource: signal must not be null");
  }
}

double AcousticSource::speaker_response_db(double frequency_hz) const {
  if (frequency_hz <= 0.0) return -200.0;
  double octaves_outside = 0.0;
  if (frequency_hz < speaker_.passband_lo_hz) {
    octaves_outside = std::log2(speaker_.passband_lo_hz / frequency_hz);
  } else if (frequency_hz > speaker_.passband_hi_hz) {
    octaves_outside = std::log2(frequency_hz / speaker_.passband_hi_hz);
  }
  return -speaker_.rolloff_db_per_octave * octaves_outside;
}

ToneState AcousticSource::emitted(sim::SimTime t) const {
  ToneState tone = signal_->at(t);
  if (!tone.active) return tone;
  double level = tone.level_db + amplifier_.gain_db;
  level = std::min(level, amplifier_.clip_level_db);
  level += speaker_response_db(tone.frequency_hz);
  level = std::min(level, speaker_.max_output_db);
  tone.level_db = level;
  return tone;
}

}  // namespace deepnote::acoustics
