#include "acoustics/propagation.h"

#include <algorithm>
#include <cmath>

namespace deepnote::acoustics {

PropagationPath::PropagationPath(Medium medium, SpreadingParams spreading,
                                 AbsorptionModel absorption)
    : medium_(medium), spreading_(spreading), absorption_(absorption) {}

double PropagationPath::transmission_loss_db(double frequency_hz,
                                             double distance_m) const {
  return spreading_loss_db(spreading_, distance_m) +
         path_absorption_db(absorption_, frequency_hz, medium_.conditions(),
                            distance_m);
}

double PropagationPath::received_spl_db(const ToneState& emitted,
                                        double distance_m) const {
  return emitted.level_db -
         transmission_loss_db(emitted.frequency_hz, distance_m);
}

ToneState PropagationPath::received(const ToneState& emitted,
                                    double distance_m) const {
  if (!emitted.active) return emitted;
  ToneState out = emitted;
  out.level_db = received_spl_db(emitted, distance_m);
  return out;
}

double PropagationPath::delay_seconds(double distance_m) const {
  return distance_m / medium_.sound_speed();
}

double PropagationPath::required_source_level_db(double frequency_hz,
                                                 double distance_m,
                                                 double target_spl_db) const {
  return target_spl_db + transmission_loss_db(frequency_hz, distance_m);
}

double PropagationPath::max_effective_range_m(double frequency_hz,
                                              double source_level_db,
                                              double target_spl_db,
                                              double search_limit_m) const {
  auto delivered = [&](double d) {
    return source_level_db - transmission_loss_db(frequency_hz, d);
  };
  double lo = spreading_.reference_distance_m;
  if (delivered(lo) < target_spl_db) return 0.0;
  if (delivered(search_limit_m) >= target_spl_db) return search_limit_m;
  double hi = search_limit_m;
  // TL is monotone in distance, so bisection converges.
  for (int i = 0; i < 200 && (hi - lo) > 1e-6 * hi; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (delivered(mid) >= target_spl_db) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace deepnote::acoustics
