// Geometric spreading loss models.
//
// Transmission loss from geometric spreading between a reference distance
// r0 and a receiver at distance r:
//   spherical:   TL = 20 log10(r/r0)   (free field, short range)
//   cylindrical: TL = 10 log10(r/r0)   (ducted, long range shallow water)
//   practical:   spherical out to a transition range, cylindrical beyond.
#pragma once

namespace deepnote::acoustics {

enum class SpreadingModel {
  kSpherical,
  kCylindrical,
  kPractical,
};

struct SpreadingParams {
  SpreadingModel model = SpreadingModel::kSpherical;
  double reference_distance_m = 0.01;  ///< source calibration distance
  double transition_range_m = 100.0;   ///< spherical->cylindrical handoff
};

/// Transmission loss in dB at distance r (>= reference distance; values
/// inside the reference distance are clamped to 0 dB — the source level is
/// by definition the level at the reference distance).
double spreading_loss_db(const SpreadingParams& params, double distance_m);

}  // namespace deepnote::acoustics
