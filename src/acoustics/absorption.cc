#include "acoustics/absorption.h"

#include <cmath>
#include <stdexcept>

namespace deepnote::acoustics {
namespace {

// Shared relaxation building block: f_rel * f^2 / (f_rel^2 + f^2),
// frequencies in kHz.
double relaxation(double f_khz, double f_rel_khz) {
  return f_rel_khz * f_khz * f_khz / (f_rel_khz * f_rel_khz + f_khz * f_khz);
}

}  // namespace

double ainslie_mccolm_db_per_km(double frequency_hz, double t, double s,
                                double depth_m, double ph) {
  const double f = frequency_hz / 1000.0;  // kHz
  const double z = depth_m / 1000.0;       // km

  // Boric acid relaxation.
  const double f1 = 0.78 * std::sqrt(std::max(s, 0.0) / 35.0) *
                    std::exp(t / 26.0);  // kHz
  const double boric =
      0.106 * relaxation(f, f1) * std::exp((ph - 8.0) / 0.56);

  // Magnesium sulfate relaxation.
  const double f2 = 42.0 * std::exp(t / 17.0);  // kHz
  const double mgso4 = 0.52 * (1.0 + t / 43.0) * (s / 35.0) *
                       relaxation(f, f2) * std::exp(-z / 6.0);

  // Viscous (pure water) term.
  const double viscous =
      0.00049 * f * f * std::exp(-(t / 27.0 + z / 17.0));

  return boric + mgso4 + viscous;
}

double fisher_simmons_db_per_km(double frequency_hz, double t, double s,
                                double depth_m) {
  // Fisher & Simmons (1977), as commonly tabulated: three terms with
  // pressure corrections. Frequencies in Hz, pressure in atm; the A_i
  // carry units such that alpha comes out in dB/km when multiplied by
  // the relaxation quotient in Hz.
  const double theta = t + 273.1;
  const double p_atm = 1.0 + depth_m / 10.0;  // ~1 atm per 10 m

  // Boric acid.
  const double a1 = 1.03e-8 + 2.36e-10 * t - 5.22e-12 * t * t;
  const double f1 = 1.32e3 * theta * std::exp(-1700.0 / theta);  // Hz
  const double p1 = 1.0;

  // Magnesium sulfate.
  const double a2 = 5.62e-8 + 7.52e-10 * t;
  const double f2 = 1.55e7 * theta * std::exp(-3052.0 / theta);  // Hz
  const double p2 = 1.0 - 10.3e-4 * p_atm + 3.7e-7 * p_atm * p_atm;

  // Pure water.
  const double a3 =
      (55.9 - 2.37 * t + 4.77e-2 * t * t - 3.48e-4 * t * t * t) * 1e-15;
  const double p3 = 1.0 - 3.84e-4 * p_atm + 7.57e-8 * p_atm * p_atm;

  const double f = frequency_hz;
  const double f_sq = f * f;
  double alpha =
      a1 * p1 * f1 * f_sq / (f1 * f1 + f_sq) +
      a2 * p2 * f2 * f_sq / (f2 * f2 + f_sq) * (s / 35.0) +
      a3 * p3 * f_sq;
  // The original coefficients produce dB/m at these scales; report dB/km.
  return alpha * 1000.0;
}

double freshwater_db_per_km(double frequency_hz, double t, double depth_m) {
  const double f = frequency_hz / 1000.0;  // kHz
  const double z = depth_m / 1000.0;       // km
  return 0.00049 * f * f * std::exp(-(t / 27.0 + z / 17.0));
}

double absorption_db_per_km(AbsorptionModel model, double frequency_hz,
                            const WaterConditions& w) {
  switch (model) {
    case AbsorptionModel::kAinslieMcColm:
      return ainslie_mccolm_db_per_km(frequency_hz, w.temperature_c,
                                      w.salinity_ppt, w.depth_m, w.ph);
    case AbsorptionModel::kFisherSimmons:
      return fisher_simmons_db_per_km(frequency_hz, w.temperature_c,
                                      w.salinity_ppt, w.depth_m);
    case AbsorptionModel::kFreshwater:
      return freshwater_db_per_km(frequency_hz, w.temperature_c, w.depth_m);
  }
  throw std::invalid_argument("unknown absorption model");
}

double path_absorption_db(AbsorptionModel model, double frequency_hz,
                          const WaterConditions& water, double distance_m) {
  return absorption_db_per_km(model, frequency_hz, water) *
         (distance_m / 1000.0);
}

}  // namespace deepnote::acoustics
