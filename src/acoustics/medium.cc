#include "acoustics/medium.h"

#include <cmath>

namespace deepnote::acoustics {

WaterConditions WaterConditions::tank() {
  return WaterConditions{.temperature_c = 22.0,
                         .salinity_ppt = 0.0,
                         .depth_m = 0.5,
                         .ph = 7.0};
}

WaterConditions WaterConditions::ocean(double depth_m) {
  return WaterConditions{.temperature_c = 10.0,
                         .salinity_ppt = 35.0,
                         .depth_m = depth_m,
                         .ph = 8.0};
}

WaterConditions WaterConditions::baltic() {
  return WaterConditions{.temperature_c = 8.0,
                         .salinity_ppt = 7.0,
                         .depth_m = 50.0,
                         .ph = 7.9};
}

Medium::Medium(WaterConditions conditions) : conditions_(conditions) {}

double Medium::medwin_sound_speed(double t, double s, double z) {
  // Medwin (1975): c = 1449.2 + 4.6T - 0.055T^2 + 0.00029T^3
  //                    + (1.34 - 0.010T)(S - 35) + 0.016z
  return 1449.2 + 4.6 * t - 0.055 * t * t + 0.00029 * t * t * t +
         (1.34 - 0.010 * t) * (s - 35.0) + 0.016 * z;
}

double Medium::sound_speed() const {
  return medwin_sound_speed(conditions_.temperature_c, conditions_.salinity_ppt,
                            conditions_.depth_m);
}

double Medium::density() const {
  // Linearised fit around fresh water at 20 C: +0.77 kg/m^3 per ppt
  // salinity, -0.2 kg/m^3 per C above 20, +~0.0045 kg/m^3 per meter of
  // depth (compressibility). Adequate for impedance computation; density
  // enters the model only through rho*c.
  const auto& c = conditions_;
  return 998.2 + 0.77 * c.salinity_ppt - 0.2 * (c.temperature_c - 20.0) +
         0.0045 * c.depth_m;
}

double Medium::impedance() const { return density() * sound_speed(); }

double Medium::wavelength(double frequency_hz) const {
  return sound_speed() / frequency_hz;
}

}  // namespace deepnote::acoustics
