#include "acoustics/spreading.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace deepnote::acoustics {

double spreading_loss_db(const SpreadingParams& params, double distance_m) {
  const double r0 = params.reference_distance_m;
  if (r0 <= 0.0) {
    throw std::invalid_argument("spreading: reference distance must be > 0");
  }
  const double r = std::max(distance_m, r0);
  switch (params.model) {
    case SpreadingModel::kSpherical:
      return 20.0 * std::log10(r / r0);
    case SpreadingModel::kCylindrical:
      return 10.0 * std::log10(r / r0);
    case SpreadingModel::kPractical: {
      const double rt = std::max(params.transition_range_m, r0);
      if (r <= rt) return 20.0 * std::log10(r / r0);
      return 20.0 * std::log10(rt / r0) + 10.0 * std::log10(r / rt);
    }
  }
  throw std::invalid_argument("unknown spreading model");
}

}  // namespace deepnote::acoustics
