// Acoustic unit conversions.
//
// Underwater acoustics expresses sound pressure level (SPL) in dB relative
// to 1 uPa; airborne acoustics uses 20 uPa. The paper's conversion rule
// (Section 2.2) is SPL_water = SPL_air + 20*log10(20uPa/1uPa) ~= +26 dB.
#pragma once

namespace deepnote::acoustics {

/// Reference pressures, in pascal.
inline constexpr double kRefPressureWaterPa = 1e-6;   // 1 uPa
inline constexpr double kRefPressureAirPa = 20e-6;    // 20 uPa

/// Exact value of the air->water reference shift, 20*log10(20) dB.
double air_to_water_reference_shift_db();

/// dB re 1 uPa  <->  pascal (RMS).
double spl_water_db_to_pa(double db_re_1upa);
double pa_to_spl_water_db(double pa);

/// dB re 20 uPa  <->  pascal (RMS).
double spl_air_db_to_pa(double db_re_20upa);
double pa_to_spl_air_db(double pa);

/// Convert an in-air SPL figure to the equivalent underwater SPL for the
/// same physical pressure (the paper's "+26 dB" rule).
double spl_air_db_to_water_db(double db_re_20upa);
double spl_water_db_to_air_db(double db_re_1upa);

/// Generic dB helpers for power ratios (10log) and field ratios (20log).
double db_from_power_ratio(double ratio);
double db_from_field_ratio(double ratio);
double power_ratio_from_db(double db);
double field_ratio_from_db(double db);

}  // namespace deepnote::acoustics
