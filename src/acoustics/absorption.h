// Sound absorption in water.
//
// Two models from the paper's references:
//  * Ainslie & McColm (1998) — the "simple and accurate formula" evaluated
//    by van Moll, Ainslie & van Vossen (2009), reference [47].
//  * Fisher & Simmons (1977), reference [15].
// Plus a pure-water (freshwater tank) model consisting of the viscous term
// only, applicable to the paper's laboratory testbed.
//
// All models return the absorption coefficient alpha in dB/km.
#pragma once

#include "acoustics/medium.h"

namespace deepnote::acoustics {

enum class AbsorptionModel {
  kAinslieMcColm,  ///< seawater, boric acid + MgSO4 + viscous terms
  kFisherSimmons,  ///< seawater, relaxation formulation
  kFreshwater,     ///< pure-water viscous term only
};

/// Absorption coefficient in dB/km at the given frequency.
double absorption_db_per_km(AbsorptionModel model, double frequency_hz,
                            const WaterConditions& water);

/// Ainslie & McColm (1998) formula. f in Hz; T Celsius; S ppt; z meters;
/// pH dimensionless. Returns dB/km.
double ainslie_mccolm_db_per_km(double frequency_hz, double temperature_c,
                                double salinity_ppt, double depth_m,
                                double ph);

/// Fisher & Simmons (1977) formulation (S = 35 ppt assumed by the original
/// paper; we scale the chemical relaxation terms linearly in S/35 which is
/// the standard engineering extension). Returns dB/km.
double fisher_simmons_db_per_km(double frequency_hz, double temperature_c,
                                double salinity_ppt, double depth_m);

/// Pure-water viscous absorption (the freshwater tank case). Returns dB/km.
double freshwater_db_per_km(double frequency_hz, double temperature_c,
                            double depth_m);

/// Total path absorption over `distance_m`, in dB.
double path_absorption_db(AbsorptionModel model, double frequency_hz,
                          const WaterConditions& water, double distance_m);

}  // namespace deepnote::acoustics
