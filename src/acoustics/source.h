// Underwater sound source: amplifier + transducer (speaker).
//
// Models the paper's transmit chain (laptop/GNU Radio -> TOA BG-2120
// amplifier -> Clark Synthesis AQ339 Diluvio underwater speaker). The
// output we care about is the source level actually emitted at the
// speaker's calibration distance as a function of frequency: the speaker
// has a usable passband with roll-off outside it and a maximum output
// level; the amplifier contributes gain and a clip ceiling.
#pragma once

#include <memory>

#include "acoustics/signal.h"
#include "sim/time.h"

namespace deepnote::acoustics {

/// Transducer frequency response and output limits.
struct SpeakerSpec {
  double passband_lo_hz = 100.0;
  double passband_hi_hz = 17000.0;
  double rolloff_db_per_octave = 12.0;  ///< attenuation outside the passband
  double max_output_db = 180.0;         ///< dB re 1 uPa at ref distance
  double reference_distance_m = 0.01;   ///< where the source level is defined

  /// Clark Synthesis AQ339 Diluvio-like swimming-pool speaker.
  static SpeakerSpec aq339_diluvio();
  /// Powerful sonar-class projector (Section 5 "military grade" discussion).
  static SpeakerSpec sonar_projector();
};

struct AmplifierSpec {
  double gain_db = 0.0;
  double clip_level_db = 200.0;  ///< output ceiling imposed by the amp

  static AmplifierSpec toa_bg2120();
};

/// A complete acoustic source: a drive signal played through an amplifier
/// and a speaker. emitted() reports the tone the water actually receives
/// at the speaker's reference distance.
class AcousticSource {
 public:
  AcousticSource(std::shared_ptr<const Signal> signal, SpeakerSpec speaker,
                 AmplifierSpec amplifier = AmplifierSpec{});

  /// The tone emitted at time t; `level_db` is the realised source level
  /// (dB re 1 uPa @ reference distance) after amp gain, speaker response
  /// and both clip ceilings.
  ToneState emitted(sim::SimTime t) const;

  /// Speaker response in dB (<= 0) at the given frequency.
  double speaker_response_db(double frequency_hz) const;

  const SpeakerSpec& speaker() const { return speaker_; }
  const AmplifierSpec& amplifier() const { return amplifier_; }

 private:
  std::shared_ptr<const Signal> signal_;
  SpeakerSpec speaker_;
  AmplifierSpec amplifier_;
};

}  // namespace deepnote::acoustics
