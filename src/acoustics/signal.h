// Attack signal generators.
//
// The attacker in the paper drives the speaker from GNU Radio with sine
// waves; the sweep procedure in Section 4.1 steps frequency over time.
// A Signal maps simulated time to the instantaneous (frequency, level)
// pair the speaker is asked to emit. The storage-side model only needs
// this narrowband description — a full sample-level waveform would add
// nothing but cost.
#pragma once

#include <memory>
#include <vector>

#include "sim/time.h"

namespace deepnote::acoustics {

/// Narrowband description of the drive signal at one instant.
struct ToneState {
  double frequency_hz = 0.0;
  double level_db = 0.0;  ///< requested level, dB re 1 uPa at ref distance
  bool active = false;
};

class Signal {
 public:
  virtual ~Signal() = default;
  virtual ToneState at(sim::SimTime t) const = 0;
};

/// Constant sine tone, optionally bounded in time.
class ToneSignal final : public Signal {
 public:
  ToneSignal(double frequency_hz, double level_db,
             sim::SimTime start = sim::SimTime::zero(),
             sim::SimTime end = sim::SimTime::infinity());
  ToneState at(sim::SimTime t) const override;

 private:
  double frequency_hz_;
  double level_db_;
  sim::SimTime start_;
  sim::SimTime end_;
};

/// Stepped frequency sweep: holds each frequency for `dwell`, in order.
class SteppedSweepSignal final : public Signal {
 public:
  SteppedSweepSignal(std::vector<double> frequencies_hz, double level_db,
                     sim::Duration dwell,
                     sim::SimTime start = sim::SimTime::zero());
  ToneState at(sim::SimTime t) const override;

  /// Build the paper's Section 4.1 sweep plan: coarse steps from `lo` to
  /// `hi` multiplying by `ratio` each step.
  static std::vector<double> geometric_plan(double lo_hz, double hi_hz,
                                            double ratio);
  /// Linear plan with fixed increment (e.g. the 50 Hz narrowing pass).
  static std::vector<double> linear_plan(double lo_hz, double hi_hz,
                                         double step_hz);

 private:
  std::vector<double> frequencies_hz_;
  double level_db_;
  sim::Duration dwell_;
  sim::SimTime start_;
};

/// Continuous linear chirp between two frequencies over a duration.
class ChirpSignal final : public Signal {
 public:
  ChirpSignal(double f0_hz, double f1_hz, double level_db,
              sim::SimTime start, sim::Duration duration);
  ToneState at(sim::SimTime t) const override;

 private:
  double f0_hz_;
  double f1_hz_;
  double level_db_;
  sim::SimTime start_;
  sim::Duration duration_;
};

/// Duty-cycled tone: ON for duty*period, OFF for the rest, repeating.
/// Models the paper's first attacker objective — a *controlled* loss of
/// throughput for a chosen amount of time.
class PulsedToneSignal final : public Signal {
 public:
  PulsedToneSignal(double frequency_hz, double level_db, sim::Duration period,
                   double duty, sim::SimTime start = sim::SimTime::zero(),
                   sim::SimTime end = sim::SimTime::infinity());
  ToneState at(sim::SimTime t) const override;

 private:
  double frequency_hz_;
  double level_db_;
  sim::Duration period_;
  double duty_;
  sim::SimTime start_;
  sim::SimTime end_;
};

/// Silence (useful as a baseline "no attack" signal).
class SilenceSignal final : public Signal {
 public:
  ToneState at(sim::SimTime) const override { return ToneState{}; }
};

}  // namespace deepnote::acoustics
