#include "acoustics/signal.h"

#include <cassert>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace deepnote::acoustics {

ToneSignal::ToneSignal(double frequency_hz, double level_db,
                       sim::SimTime start, sim::SimTime end)
    : frequency_hz_(frequency_hz),
      level_db_(level_db),
      start_(start),
      end_(end) {
  if (frequency_hz <= 0.0) {
    throw std::invalid_argument("ToneSignal: frequency must be positive");
  }
}

ToneState ToneSignal::at(sim::SimTime t) const {
  if (t < start_ || t >= end_) return ToneState{};
  return ToneState{frequency_hz_, level_db_, true};
}

SteppedSweepSignal::SteppedSweepSignal(std::vector<double> frequencies_hz,
                                       double level_db, sim::Duration dwell,
                                       sim::SimTime start)
    : frequencies_hz_(std::move(frequencies_hz)),
      level_db_(level_db),
      dwell_(dwell),
      start_(start) {
  if (frequencies_hz_.empty()) {
    throw std::invalid_argument("SteppedSweepSignal: empty frequency plan");
  }
  if (dwell_.ns() <= 0) {
    throw std::invalid_argument("SteppedSweepSignal: dwell must be positive");
  }
}

ToneState SteppedSweepSignal::at(sim::SimTime t) const {
  if (t < start_) return ToneState{};
  const auto idx = static_cast<std::size_t>((t - start_).ns() / dwell_.ns());
  if (idx >= frequencies_hz_.size()) return ToneState{};
  return ToneState{frequencies_hz_[idx], level_db_, true};
}

std::vector<double> SteppedSweepSignal::geometric_plan(double lo_hz,
                                                       double hi_hz,
                                                       double ratio) {
  if (lo_hz <= 0 || hi_hz < lo_hz || ratio <= 1.0) {
    throw std::invalid_argument("geometric_plan: bad parameters");
  }
  std::vector<double> plan;
  for (double f = lo_hz; f <= hi_hz * (1.0 + 1e-9); f *= ratio) {
    plan.push_back(f);
  }
  return plan;
}

std::vector<double> SteppedSweepSignal::linear_plan(double lo_hz, double hi_hz,
                                                    double step_hz) {
  if (lo_hz <= 0 || hi_hz < lo_hz || step_hz <= 0.0) {
    throw std::invalid_argument("linear_plan: bad parameters");
  }
  std::vector<double> plan;
  for (double f = lo_hz; f <= hi_hz + step_hz * 1e-9; f += step_hz) {
    plan.push_back(f);
  }
  return plan;
}

ChirpSignal::ChirpSignal(double f0_hz, double f1_hz, double level_db,
                         sim::SimTime start, sim::Duration duration)
    : f0_hz_(f0_hz),
      f1_hz_(f1_hz),
      level_db_(level_db),
      start_(start),
      duration_(duration) {
  if (f0_hz <= 0.0 || f1_hz <= 0.0) {
    throw std::invalid_argument("ChirpSignal: frequencies must be positive");
  }
  if (duration.ns() <= 0) {
    throw std::invalid_argument("ChirpSignal: duration must be positive");
  }
}

ToneState ChirpSignal::at(sim::SimTime t) const {
  if (t < start_) return ToneState{};
  const double frac =
      static_cast<double>((t - start_).ns()) /
      static_cast<double>(duration_.ns());
  if (frac >= 1.0) return ToneState{};
  return ToneState{f0_hz_ + (f1_hz_ - f0_hz_) * frac, level_db_, true};
}


PulsedToneSignal::PulsedToneSignal(double frequency_hz, double level_db,
                                   sim::Duration period, double duty,
                                   sim::SimTime start, sim::SimTime end)
    : frequency_hz_(frequency_hz),
      level_db_(level_db),
      period_(period),
      duty_(duty),
      start_(start),
      end_(end) {
  if (frequency_hz <= 0.0) {
    throw std::invalid_argument("PulsedToneSignal: frequency must be > 0");
  }
  if (period.ns() <= 0) {
    throw std::invalid_argument("PulsedToneSignal: period must be > 0");
  }
  if (duty < 0.0 || duty > 1.0) {
    throw std::invalid_argument("PulsedToneSignal: duty must be in [0,1]");
  }
}

ToneState PulsedToneSignal::at(sim::SimTime t) const {
  if (t < start_ || t >= end_) return ToneState{};
  const std::int64_t in_period = (t - start_).ns() % period_.ns();
  const auto on_ns = static_cast<std::int64_t>(
      duty_ * static_cast<double>(period_.ns()));
  if (in_period >= on_ns) return ToneState{};
  return ToneState{frequency_hz_, level_db_, true};
}

}  // namespace deepnote::acoustics
